// Command adaptsim runs a single simulated MapReduce job — under a fixed
// scheduler pair, an explicit phase plan, or the adaptive meta-scheduler —
// and reports timings.
//
// Examples:
//
//	adaptsim -bench sort -pair cfq,cfq
//	adaptsim -bench sort -plan "ad|ca"           # explicit two-phase plan
//	adaptsim -bench wordcount -adaptive          # run the meta-scheduler
//	adaptsim -bench sort -reactive               # the reactive controller
//	adaptsim -bench sort -hosts 6 -vms 4 -input 1024 -adaptive
//	adaptsim -bench sort -trace trace.json -metrics metrics.csv
//	adaptsim -fleet scenario.json -check         # multi-job fleet scenario
//	adaptsim -fleet smoke -fleet-report fleet.md # built-in smoke scenario
//
// -fleet runs a multi-job fleet scenario (JSON schema in API.md; the
// literal "smoke" selects the built-in smoke scenario): per-cell
// JobTracker admission and slot scheduling across concurrent jobs, cells
// simulated in parallel (-parallel) with byte-identical output.
// -fleet-report writes the markdown fleet report; -fleet-json the full
// result JSON.
//
// -trace writes a Chrome trace-event JSON file (load it in Perfetto or
// chrome://tracing); -metrics writes a metrics snapshot, with the format
// picked by -metrics-format (json, csv, prom — Prometheus text
// exposition — or auto by extension). -cpuprofile
// and -memprofile write pprof self-profiles of the simulator.
//
// -parallel N fans the tuner's independent evaluations across N workers
// (0 = GOMAXPROCS) with byte-identical output; -evalcache DIR answers
// repeated evaluations from an on-disk content-addressed cache.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"

	"adaptmr"
	"adaptmr/internal/cliutil"
	"adaptmr/internal/sim"
)

// logger carries diagnostics to stderr (configured by -log); results
// stay on stdout.
var logger = slog.Default()

func fail(err error) {
	logger.Error("fatal", "err", err)
	os.Exit(1)
}

func main() {
	bench := flag.String("bench", "sort", "workload: sort, wordcount, wordcount-nc")
	fleetArg := flag.String("fleet", "", "run a multi-job fleet scenario from this JSON file ('smoke' = built-in)")
	fleetReport := flag.String("fleet-report", "", "write the markdown fleet report here (with -fleet)")
	fleetJSON := flag.String("fleet-json", "", "write the full fleet result JSON here (with -fleet)")
	pairArg := flag.String("pair", "cc", "scheduler pair for a single run (code or long form)")
	planArg := flag.String("plan", "", "explicit phase plan, pair codes joined by '|' (e.g. ad|ca)")
	adaptive := flag.Bool("adaptive", false, "run the adaptive meta-scheduler instead of one pair")
	reactive := flag.Bool("reactive", false, "run under the reactive per-host controller")
	online := flag.Bool("online", false, "run under the online adaptive controller (live phase classification, in-run switching)")
	onlineWindow := flag.Int64("online-window", 0, "online controller sampling window in ms (0 = policy default)")
	onlineDwell := flag.Int64("online-dwell", 0, "online controller minimum dwell between switches in ms (0 = policy default)")
	onlineStable := flag.Int("online-stable", 0, "online controller stable windows before a switch (0 = policy default)")
	onlineBudget := flag.Float64("online-budget", 0, "online controller switch-cost budget as a fraction of dwell (0 = policy default)")
	onlineJSON := flag.String("online-json", "", "write the full online result JSON here (with -online)")
	hosts := flag.Int("hosts", 4, "physical nodes")
	vms := flag.Int("vms", 4, "VMs per node")
	inputMB := flag.Int64("input", 512, "input data per datanode VM, in MB")
	seed := flag.Int64("seed", 1, "simulation seed")
	phases := flag.Int("phases", 2, "phase scheme for plans and tuning (2 or 3)")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON file (Perfetto-loadable)")
	metricsOut := cliutil.BindMetricsFlags(flag.CommandLine)
	parallel := cliutil.BindParallelFlag(flag.CommandLine)
	evalCache := cliutil.BindEvalCacheFlag(flag.CommandLine)
	checkInv := cliutil.BindCheckFlag(flag.CommandLine)
	prof := cliutil.BindProfileFlags(flag.CommandLine)
	logFlag := cliutil.BindLogFlag(flag.CommandLine)
	flag.Parse()

	l, err := logFlag.Logger()
	if err != nil {
		fmt.Fprintln(os.Stderr, "adaptsim:", err)
		os.Exit(1)
	}
	logger = l

	if err := prof.Start(); err != nil {
		fail(err)
	}

	cfg := adaptmr.DefaultClusterConfig()
	cfg.Hosts = *hosts
	cfg.VMsPerHost = *vms
	cfg.Seed = *seed

	var opts []adaptmr.Option
	var tracer *adaptmr.Tracer
	if *tracePath != "" {
		tracer = adaptmr.NewTracer()
		opts = append(opts, adaptmr.WithTracer(tracer))
	}
	var metrics *adaptmr.Metrics
	if metricsOut.Enabled() {
		metrics = adaptmr.NewMetrics()
		opts = append(opts, adaptmr.WithMetrics(metrics))
	}
	opts = append(opts, adaptmr.WithParallelism(*parallel))
	if *evalCache != "" {
		opts = append(opts, adaptmr.WithEvalCache(*evalCache))
	}
	if *checkInv {
		opts = append(opts, adaptmr.WithInvariantChecks())
	}

	var wl adaptmr.Workload
	switch *bench {
	case "sort":
		wl = adaptmr.SortBenchmark(*inputMB << 20)
	case "wordcount":
		wl = adaptmr.WordCountBenchmark(*inputMB << 20)
	case "wordcount-nc", "wordcount-no-combiner":
		wl = adaptmr.WordCountNoCombinerBenchmark(*inputMB << 20)
	default:
		fail(fmt.Errorf("unknown benchmark %q", *bench))
	}

	scheme := adaptmr.TwoPhases
	if *phases == 3 {
		scheme = adaptmr.ThreePhases
	} else if *phases != 2 {
		fail(fmt.Errorf("phases must be 2 or 3"))
	}

	switch {
	case *fleetArg != "":
		var scen adaptmr.FleetScenario
		if *fleetArg == "smoke" {
			scen = adaptmr.SmokeFleetScenario()
		} else {
			s, err := adaptmr.LoadFleetScenario(*fleetArg)
			if err != nil {
				fail(err)
			}
			scen = s
		}
		res, err := adaptmr.RunFleet(scen, opts...)
		if err != nil {
			fail(err)
		}
		a := res.Agg
		fmt.Printf("fleet %s: %d jobs on %d cells (%d hosts, %d VMs), policy %s, pair %s\n",
			res.Scenario, a.Jobs, res.Cells, res.Hosts, res.VMs, res.Policy, res.Pair)
		fmt.Printf("  makespan %.1fs | %.1f jobs/hour | duration p50 %.1fs p95 %.1fs\n",
			a.MakespanS, a.ThroughputJobsPerHour, a.P50DurationS, a.P95DurationS)
		fmt.Printf("  wait mean %.1fs max %.1fs | peak concurrency %d | mean overlap %.0f%% | %d events\n",
			a.MeanWaitS, a.MaxWaitS, a.PeakConcurrency, a.MeanOverlapPct, res.SimEvents)
		if *fleetReport != "" {
			f, err := os.Create(*fleetReport)
			if err != nil {
				fail(err)
			}
			if err := adaptmr.WriteFleetReport(f, res); err != nil {
				f.Close()
				fail(err)
			}
			if err := f.Close(); err != nil {
				fail(err)
			}
			fmt.Printf("fleet report written to %s\n", *fleetReport)
		}
		if *fleetJSON != "" {
			f, err := os.Create(*fleetJSON)
			if err != nil {
				fail(err)
			}
			enc := json.NewEncoder(f)
			enc.SetIndent("", "  ")
			if err := enc.Encode(res); err != nil {
				f.Close()
				fail(err)
			}
			if err := f.Close(); err != nil {
				fail(err)
			}
			fmt.Printf("fleet result written to %s\n", *fleetJSON)
		}

	case *online:
		pol := adaptmr.DefaultOnlinePolicy()
		if *onlineWindow > 0 {
			pol.Window = sim.Duration(*onlineWindow) * sim.Millisecond
		}
		if *onlineDwell > 0 {
			pol.MinDwell = sim.Duration(*onlineDwell) * sim.Millisecond
		}
		if *onlineStable > 0 {
			pol.StableWindows = *onlineStable
		}
		if *onlineBudget > 0 {
			pol.CostBudget = *onlineBudget
		}
		res, err := adaptmr.RunOnline(cfg, wl.Job, append(opts, adaptmr.WithOnlineControl(pol))...)
		if err != nil {
			fail(err)
		}
		fmt.Printf("online controller on %s: %.1fs (%s -> %s, %d switches over %d windows, stall %.2fs)\n",
			wl.Job.Name, res.Job.Duration.Seconds(), res.StartPairCode, res.FinalPairCode,
			res.Switches, res.Windows, res.SwitchStall.Seconds())
		for _, d := range res.Decisions {
			fmt.Printf("  t=%6.2fs %-5s %s -> %s streak %d cost %.3fs %s\n",
				d.AtS, d.Regime, d.From, d.To, d.Streak, d.CostS, d.Reason)
		}
		printPhases(res.Job)
		if *onlineJSON != "" {
			f, err := os.Create(*onlineJSON)
			if err != nil {
				fail(err)
			}
			enc := json.NewEncoder(f)
			enc.SetIndent("", "  ")
			if err := enc.Encode(res); err != nil {
				f.Close()
				fail(err)
			}
			if err := f.Close(); err != nil {
				fail(err)
			}
			fmt.Printf("online result written to %s\n", *onlineJSON)
		}

	case *reactive:
		res, switches, err := adaptmr.RunFineGrained(cfg, wl.Job, nil, opts...)
		if err != nil {
			fail(err)
		}
		fmt.Printf("reactive controller on %s: %.1fs (%d switch commands)\n",
			wl.Job.Name, res.Duration.Seconds(), switches)
		printPhases(res)

	case *adaptive:
		tuner := adaptmr.NewTuner(cfg, wl.Job, opts...).WithScheme(scheme)
		res, err := tuner.Tune()
		if err != nil {
			fail(err)
		}
		fmt.Printf("workload        %s (%s disk operations)\n", wl.Job.Name, wl.Class)
		fmt.Printf("default  %-40s %8.1fs\n", res.Default.Plan, res.Default.Duration.Seconds())
		fmt.Printf("best-1   %-40s %8.1fs\n", res.BestSingle.Plan, res.BestSingle.Duration.Seconds())
		fmt.Printf("adaptive %-40s %8.1fs\n", res.Plan, res.Duration.Seconds())
		fmt.Printf("improvement: %.1f%% vs default, %.1f%% vs best single (%d evaluations)\n",
			100*res.ImprovementOverDefault(), 100*res.ImprovementOverBestSingle(), res.Evaluations)

	case *planArg != "":
		codes := strings.Split(*planArg, "|")
		if len(codes) != scheme.Phases() {
			fail(fmt.Errorf("plan needs %d pairs, got %d", scheme.Phases(), len(codes)))
		}
		var pairs []adaptmr.Pair
		for _, c := range codes {
			p, err := adaptmr.ParsePair(c)
			if err != nil {
				fail(err)
			}
			pairs = append(pairs, p)
		}
		tuner := adaptmr.NewTuner(cfg, wl.Job, opts...).WithScheme(scheme)
		res, err := tuner.RunPlan(adaptmr.NewPlan(scheme, pairs...))
		if err != nil {
			fail(err)
		}
		fmt.Printf("plan %s: %.1fs (switch stall %.1fs)\n",
			res.Plan, res.Duration.Seconds(), res.SwitchStall.Seconds())
		printPhases(res.Job)

	default:
		p, err := adaptmr.ParsePair(*pairArg)
		if err != nil {
			fail(err)
		}
		res, err := adaptmr.Run(cfg, wl.Job, p, opts...)
		if err != nil {
			fail(err)
		}
		fmt.Printf("pair %s on %s: %.1fs\n", p, wl.Job.Name, res.Duration.Seconds())
		printPhases(res)
	}

	if tracer != nil {
		if err := tracer.WriteFile(*tracePath); err != nil {
			fail(err)
		}
		fmt.Printf("trace: %d events written to %s\n", tracer.Len(), *tracePath)
	}
	if metrics != nil {
		if err := metricsOut.Write(metrics.Snapshot()); err != nil {
			fail(err)
		}
		fmt.Printf("metrics written to %s\n", metricsOut.Path)
	}
	if err := prof.Stop(); err != nil {
		fail(err)
	}
}

func printPhases(res adaptmr.JobResult) {
	fmt.Printf("  maps %d (%.1f waves), reduces %d\n", res.NumMaps, res.Waves, res.NumReduces)
	fmt.Printf("  ph1 map %.1fs | ph2 shuffle %.1fs | ph3 reduce %.1fs | non-concurrent shuffle %.1f%%\n",
		res.MapsDoneAt.Sub(res.Start).Seconds(),
		res.ShuffleDoneAt.Sub(res.MapsDoneAt).Seconds(),
		res.Done.Sub(res.ShuffleDoneAt).Seconds(),
		res.NonConcurrentShufflePct)
}
