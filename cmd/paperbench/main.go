// Command paperbench regenerates every table and figure of the paper's
// evaluation section on the simulated testbed and prints the rendered
// artefacts.
//
// Usage:
//
//	paperbench [-quick] [-only fig2,table1] [-o out.txt] [-trace t.json] [-metrics m.csv] [-parallel N]
//
// With -quick a scaled-down testbed is used (2×2 cluster, smaller inputs,
// 6 candidate pairs); without it the full paper configuration runs (4×4
// cluster, 512 MB per datanode, all 16 pairs), which takes tens of minutes.
// -parallel N fans the independent sweep cells and tuner evaluations
// across N workers (0 = GOMAXPROCS) with byte-identical artefacts; when
// -trace or -metrics is set the direct sweeps fall back to serial so the
// shared sinks record in the historical order. -metrics-format picks the
// snapshot encoding: json, csv, prom (Prometheus text exposition) or
// auto by extension.
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"

	"adaptmr"
	"adaptmr/internal/cliutil"
)

// logger carries diagnostics to stderr (configured by -log); artefact
// output stays on stdout / -o.
var logger = slog.Default()

func fail(err error) {
	logger.Error("fatal", "err", err)
	os.Exit(1)
}

func main() {
	quick := flag.Bool("quick", false, "run the scaled-down configuration")
	only := flag.String("only", "", "comma-separated subset (fig1..fig8, table1, table2)")
	out := flag.String("o", "", "also write the artefacts to this file")
	csvDir := flag.String("csv", "", "directory to write per-artefact CSV data into")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON file covering every simulated job")
	metricsOut := cliutil.BindMetricsFlags(flag.CommandLine)
	parallel := cliutil.BindParallelFlag(flag.CommandLine)
	checkInv := cliutil.BindCheckFlag(flag.CommandLine)
	prof := cliutil.BindProfileFlags(flag.CommandLine)
	logFlag := cliutil.BindLogFlag(flag.CommandLine)
	flag.Parse()

	l, err := logFlag.Logger()
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}
	logger = l

	if err := prof.Start(); err != nil {
		fail(err)
	}

	cfg := adaptmr.PaperExperiments()
	if *quick {
		cfg = adaptmr.QuickExperiments()
	}
	cfg.Parallelism = *parallel

	var tracer *adaptmr.Tracer
	if *tracePath != "" {
		tracer = adaptmr.NewTracer()
		cfg.Cluster.Obs.Trace = tracer
	}
	var metrics *adaptmr.Metrics
	if metricsOut.Enabled() {
		metrics = adaptmr.NewMetrics()
		cfg.Cluster.Obs.Metrics = metrics
	}
	var checks *adaptmr.CheckSet
	if *checkInv {
		checks = adaptmr.NewCheckSet()
		cfg.Cluster.Check = checks
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	var subset []string
	if *only != "" {
		for _, s := range strings.Split(*only, ",") {
			if s = strings.TrimSpace(s); s != "" {
				subset = append(subset, s)
			}
		}
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fail(err)
		}
	}
	if err := adaptmr.RunExperimentsCSV(cfg, w, *csvDir, subset...); err != nil {
		fail(err)
	}

	if checks != nil {
		checks.Finalize()
		if err := checks.Err(); err != nil {
			fail(err)
		}
		logger.Info("invariant checks clean")
	}

	if tracer != nil {
		if err := tracer.WriteFile(*tracePath); err != nil {
			fail(err)
		}
		fmt.Printf("trace: %d events written to %s\n", tracer.Len(), *tracePath)
	}
	if metrics != nil {
		if err := metricsOut.Write(metrics.Snapshot()); err != nil {
			fail(err)
		}
		fmt.Printf("metrics written to %s\n", metricsOut.Path)
	}
	if err := prof.Stop(); err != nil {
		fail(err)
	}
}
