// Command adaptreport analyzes instrumented simulation runs into
// human-readable reports and gates performance regressions against a
// committed baseline.
//
// Subcommands:
//
//	adaptreport run  [sim flags] [-format md|html|json] [-o report.md] [-bench-out BENCH.json]
//	                 [-evalcache DIR]
//	    Run one fully instrumented job and render the analysis report
//	    (critical path with per-layer blame, phase breakdown, latency
//	    quantiles, timeseries). -evalcache additionally runs the same
//	    (cluster, job, plan) evaluation uninstrumented against the
//	    on-disk cache — warming it for the other tools (adaptd,
//	    adaptsim) — and prints the cache's hit/miss/bypass tallies.
//
//	adaptreport explain [sim flags] [-format md|html|json] [-o report.md]
//	    Run one fully instrumented job with journey and decision
//	    provenance enabled and render the explain report: per-phase
//	    verdicts ("why this pair won this phase"), the ns-exact request
//	    latency decomposition per stage and per VM, and the scheduler
//	    decision tallies at both queue levels — followed by the full
//	    analysis report.
//
//	adaptreport gate [sim flags] [-baseline BENCH_baseline.json] [-tol 0.05]
//	                 [-candidate BENCH_candidate.json] [-html report.html] [-update]
//	                 [-parallel N] [-sweep-out sweep.json] [-o compare.txt]
//	                 [-fleet-baseline BENCH_fleet.json] [-fleet-candidate FLEET.json]
//	    Run the same instrumented job, condense it to a bench summary and
//	    compare against the committed baseline. Exits 1 when a gated
//	    metric regressed beyond the tolerance. -update rewrites the
//	    baseline instead of comparing. -sweep-out additionally times the
//	    16-pair profile sweep serial vs -parallel workers, verifies the
//	    outputs are identical, and writes the speedup record as JSON.
//	    -fleet-baseline additionally runs the built-in multi-job fleet
//	    smoke scenario (deterministic, no wall-clock dimensions) and
//	    gates its bench against that committed baseline.
//
//	adaptreport compare [-tol 0.05] [-o compare.txt] base.json candidate.json
//	    Compare two previously written bench summaries. -o additionally
//	    writes the comparison to a file (JSON when the path ends in
//	    .json, the text table otherwise) — on both gate and compare, and
//	    even when the verdict is FAIL, so CI can upload it as an
//	    artifact.
//
// Sim flags (run and gate): -bench, -pair, -hosts, -vms, -input, -seed,
// -slowdown. All output is deterministic for a fixed configuration, which
// is what makes byte-level baseline comparison possible.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"runtime"
	"strings"
	"time"

	"adaptmr"
	"adaptmr/internal/cliutil"
)

// logger is the process-wide diagnostic logger; each subcommand rebinds it
// from its parsed -log flag. Result output (reports, verdict tables) stays
// on stdout — only diagnostics go through here.
var logger = slog.Default()

func fail(err error) {
	logger.Error("fatal", "err", err)
	os.Exit(2)
}

// initLogger resolves the parsed -log flag into the process logger.
func initLogger(lf *cliutil.LogFlag) {
	lg, err := lf.Logger()
	if err != nil {
		fmt.Fprintln(os.Stderr, "adaptreport:", err)
		os.Exit(2)
	}
	logger = lg
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: adaptreport <run|explain|gate|compare> [flags]")
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "run":
		cmdRun(os.Args[2:])
	case "explain":
		cmdExplain(os.Args[2:])
	case "gate":
		cmdGate(os.Args[2:])
	case "compare":
		cmdCompare(os.Args[2:])
	default:
		usage()
	}
}

// simFlags binds the shared simulation flags on fs.
type simFlags struct {
	bench    *string
	pairArg  *string
	hosts    *int
	vms      *int
	inputMB  *int64
	seed     *int64
	slowdown *float64
	points   *int
	check    *bool
	perf     *bool
	log      *cliutil.LogFlag
}

func bindSimFlags(fs *flag.FlagSet) *simFlags {
	return &simFlags{
		bench:    fs.String("bench", "sort", "workload: sort, wordcount, wordcount-nc"),
		pairArg:  fs.String("pair", "cc", "scheduler pair (code or long form)"),
		hosts:    fs.Int("hosts", 2, "physical nodes"),
		vms:      fs.Int("vms", 2, "VMs per node"),
		inputMB:  fs.Int64("input", 64, "input data per datanode VM, in MB"),
		seed:     fs.Int64("seed", 1, "simulation seed"),
		slowdown: fs.Float64("slowdown", 0, "slow host 0's disk by this factor (0 = off; for gate testing)"),
		points:   fs.Int("timeseries-points", 0, "timeseries sample cap (0 = default 160)"),
		check:    cliutil.BindCheckFlag(fs),
		perf: fs.Bool("perf", true,
			"collect engine self-telemetry (wall clock, events/sec, allocs/event) into the bench summary; disable for byte-identical reports"),
		log: cliutil.BindLogFlag(fs),
	}
}

// setup resolves the sim flags into a cluster config, workload and pair.
func (sf *simFlags) setup() (adaptmr.ClusterConfig, adaptmr.Workload, adaptmr.Pair, error) {
	cfg := adaptmr.DefaultClusterConfig()
	cfg.Hosts = *sf.hosts
	cfg.VMsPerHost = *sf.vms
	cfg.Seed = *sf.seed
	if *sf.slowdown > 0 {
		cfg.HostDiskSlowdown = map[int]float64{0: *sf.slowdown}
	}

	var wl adaptmr.Workload
	switch *sf.bench {
	case "sort":
		wl = adaptmr.SortBenchmark(*sf.inputMB << 20)
	case "wordcount":
		wl = adaptmr.WordCountBenchmark(*sf.inputMB << 20)
	case "wordcount-nc", "wordcount-no-combiner":
		wl = adaptmr.WordCountNoCombinerBenchmark(*sf.inputMB << 20)
	default:
		return cfg, wl, adaptmr.Pair{}, fmt.Errorf("unknown benchmark %q", *sf.bench)
	}
	pair, err := adaptmr.ParsePair(*sf.pairArg)
	if err != nil {
		return cfg, wl, adaptmr.Pair{}, err
	}
	return cfg, wl, pair, nil
}

// run executes one instrumented job per the sim flags and analyzes it.
func (sf *simFlags) run() (*adaptmr.Report, error) {
	cfg, wl, pair, err := sf.setup()
	if err != nil {
		return nil, err
	}
	return adaptmr.RunReport(cfg, wl.Job, pair, adaptmr.ReportOptions{
		Workload:         *sf.bench,
		InputMB:          *sf.inputMB,
		TimeseriesPoints: *sf.points,
		CheckInvariants:  *sf.check,
		CollectPerf:      *sf.perf,
	})
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("adaptreport run", flag.ExitOnError)
	sf := bindSimFlags(fs)
	format := fs.String("format", "md", "output format: md, html or json")
	out := fs.String("o", "", "output path (default stdout)")
	benchOut := fs.String("bench-out", "", "also write the run's bench summary JSON here")
	evalCache := cliutil.BindEvalCacheFlag(fs)
	prof := cliutil.BindProfileFlags(fs)
	fs.Parse(args)
	initLogger(sf.log)
	if err := prof.Start(); err != nil {
		fail(err)
	}

	// The instrumented report run cannot be served from the eval cache
	// (cached results cannot replay their observations), so -evalcache
	// instead primes the cache with the equivalent uninstrumented
	// evaluation and reports the tallies.
	if *evalCache != "" {
		if err := primeEvalCache(sf, *evalCache); err != nil {
			fail(err)
		}
	}

	rep, err := sf.run()
	if err != nil {
		fail(err)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "md", "markdown":
		err = rep.WriteMarkdown(w)
	case "html":
		err = rep.WriteHTML(w)
	case "json":
		err = writeJSON(w, rep)
	default:
		err = fmt.Errorf("unknown format %q (want md, html or json)", *format)
	}
	if err != nil {
		fail(err)
	}
	if *benchOut != "" {
		if err := writeJSONFile(*benchOut, rep.Bench); err != nil {
			fail(err)
		}
	}
	if err := prof.Stop(); err != nil {
		fail(err)
	}
}

// cmdExplain runs one instrumented job with journey and decision
// provenance enabled and renders the explain report.
func cmdExplain(args []string) {
	fs := flag.NewFlagSet("adaptreport explain", flag.ExitOnError)
	sf := bindSimFlags(fs)
	format := fs.String("format", "md", "output format: md, html or json")
	out := fs.String("o", "", "output path (default stdout)")
	prof := cliutil.BindProfileFlags(fs)
	fs.Parse(args)
	initLogger(sf.log)
	if err := prof.Start(); err != nil {
		fail(err)
	}

	cfg, wl, pair, err := sf.setup()
	if err != nil {
		fail(err)
	}
	rep, err := adaptmr.RunExplain(cfg, wl.Job, pair, adaptmr.ReportOptions{
		Workload:         *sf.bench,
		InputMB:          *sf.inputMB,
		TimeseriesPoints: *sf.points,
		CheckInvariants:  *sf.check,
		CollectPerf:      *sf.perf,
	})
	if err != nil {
		fail(err)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "md", "markdown":
		err = rep.WriteMarkdown(w)
	case "html":
		err = rep.WriteHTML(w)
	case "json":
		err = writeJSON(w, rep)
	default:
		err = fmt.Errorf("unknown format %q (want md, html or json)", *format)
	}
	if err != nil {
		fail(err)
	}
	if err := prof.Stop(); err != nil {
		fail(err)
	}
}

// primeEvalCache runs the report's (cluster, job, pair) evaluation
// uninstrumented against the on-disk cache at dir — a hit answers from
// disk, a miss simulates once and stores — and prints the cache's
// lifetime tallies.
func primeEvalCache(sf *simFlags, dir string) error {
	cfg, wl, pair, err := sf.setup()
	if err != nil {
		return err
	}
	cache, err := adaptmr.OpenEvalCache(dir)
	if err != nil {
		return err
	}
	tuner := adaptmr.NewTuner(cfg, wl.Job, adaptmr.WithEvalCacheHandle(cache))
	if _, err := tuner.RunPlan(adaptmr.UniformPlan(adaptmr.TwoPhases, pair)); err != nil {
		return err
	}
	st := cache.Stats()
	logger.Info("evalcache primed", "dir", dir,
		"hits", st.Hits, "misses", st.Misses, "bypasses", st.Bypasses)
	return nil
}

func cmdGate(args []string) {
	fs := flag.NewFlagSet("adaptreport gate", flag.ExitOnError)
	sf := bindSimFlags(fs)
	baseline := fs.String("baseline", "BENCH_baseline.json", "committed baseline bench JSON")
	tol := fs.Float64("tol", 0.05, "relative regression tolerance on gated metrics")
	candidate := fs.String("candidate", "", "write the candidate bench JSON here (for CI artifacts)")
	htmlOut := fs.String("html", "", "write the candidate's full HTML report here")
	update := fs.Bool("update", false, "rewrite the baseline from this run instead of comparing")
	fleetBaseline := fs.String("fleet-baseline", "",
		"also gate the built-in fleet smoke scenario against this committed bench JSON (-update rewrites it)")
	fleetCandidate := fs.String("fleet-candidate", "", "write the fleet candidate bench JSON here (for CI artifacts)")
	onlineBaseline := fs.String("online-baseline", "",
		"also gate the online-controller run of this workload against this committed bench JSON (-update rewrites it)")
	onlineCandidate := fs.String("online-candidate", "", "write the online candidate bench JSON here (for CI artifacts)")
	parallel := cliutil.BindParallelFlag(fs)
	sweepOut := fs.String("sweep-out", "",
		"also run the 16-pair profile sweep serial and with -parallel workers, verify identical output, and write the timing JSON here")
	cmpOut := fs.String("o", "",
		"write the comparison here too (JSON when the path ends in .json, the text table otherwise)")
	prof := cliutil.BindProfileFlags(fs)
	fs.Parse(args)
	initLogger(sf.log)
	if err := prof.Start(); err != nil {
		fail(err)
	}

	// Perf numbers are wall-clock, so one cold run in a fresh process
	// understates the engine: the first evaluation pays one-time costs
	// (first-touch page faults while the heap grows, lazy runtime init)
	// and any later one can be preempted on a busy machine. Warm up once,
	// then measure a few repeats and keep the fastest — the standard
	// estimator of true cost under scheduling noise. The simulation is
	// deterministic, so every repeat produces the identical report; only
	// timing fidelity changes.
	rep, err := sf.run()
	if err != nil {
		fail(err)
	}
	if *sf.perf {
		const perfRepeats = 5
		for i := 0; i < perfRepeats; i++ {
			r, err := sf.run()
			if err != nil {
				fail(err)
			}
			if r.Bench.EventsPerSec > rep.Bench.EventsPerSec {
				rep = r
			}
		}
	}
	if *sweepOut != "" {
		if err := writeSweep(sf, *parallel, *sweepOut); err != nil {
			fail(err)
		}
	}

	// The fleet workload: the built-in multi-job smoke scenario, run
	// without perf collection so its bench is byte-deterministic
	// (makespan, per-phase sums and event counts gate; no wall-clock
	// dimensions).
	var fleetBench adaptmr.Bench
	if *fleetBaseline != "" {
		res, err := adaptmr.RunFleet(adaptmr.SmokeFleetScenario(), adaptmr.WithParallelism(*parallel))
		if err != nil {
			fail(err)
		}
		fleetBench = adaptmr.FleetBench(res)
		if *fleetCandidate != "" {
			if err := writeJSONFile(*fleetCandidate, fleetBench); err != nil {
				fail(err)
			}
		}
	}
	// The online workload: the same (cluster, job) as the main bench but
	// executed under the online adaptive controller at smoke-scale policy,
	// without perf collection so the bench is byte-deterministic. Switch
	// count gates near-exactly: a controller behaviour change must come
	// with an explicit baseline update.
	var onlineBench adaptmr.Bench
	if *onlineBaseline != "" {
		cfg, wl, _, err := sf.setup()
		if err != nil {
			fail(err)
		}
		res, err := adaptmr.RunOnline(cfg, wl.Job,
			adaptmr.WithOnlineControl(adaptmr.SmokeOnlinePolicy()),
			adaptmr.WithParallelism(*parallel))
		if err != nil {
			fail(err)
		}
		onlineBench = adaptmr.OnlineBench(res, *sf.bench, cfg, *sf.inputMB)
		if *onlineCandidate != "" {
			if err := writeJSONFile(*onlineCandidate, onlineBench); err != nil {
				fail(err)
			}
		}
	}
	if *candidate != "" {
		if err := writeJSONFile(*candidate, rep.Bench); err != nil {
			fail(err)
		}
	}
	if *htmlOut != "" {
		f, err := os.Create(*htmlOut)
		if err != nil {
			fail(err)
		}
		if err := rep.WriteHTML(f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}
	if *update {
		if err := writeJSONFile(*baseline, rep.Bench); err != nil {
			fail(err)
		}
		fmt.Printf("baseline updated: %s (makespan %.3fs)\n", *baseline, rep.Bench.MakespanS)
		if *fleetBaseline != "" {
			if err := writeJSONFile(*fleetBaseline, fleetBench); err != nil {
				fail(err)
			}
			fmt.Printf("fleet baseline updated: %s (makespan %.3fs)\n", *fleetBaseline, fleetBench.MakespanS)
		}
		if *onlineBaseline != "" {
			if err := writeJSONFile(*onlineBaseline, onlineBench); err != nil {
				fail(err)
			}
			fmt.Printf("online baseline updated: %s (makespan %.3fs, %d switches)\n",
				*onlineBaseline, onlineBench.MakespanS, onlineBench.Switches)
		}
		if err := prof.Stop(); err != nil {
			fail(err)
		}
		return
	}

	base, err := readBench(*baseline)
	if err != nil {
		fail(err)
	}
	cmp, err := adaptmr.CompareBenches(base, rep.Bench, *tol)
	if err != nil {
		fail(err)
	}
	if err := cmp.WriteText(os.Stdout); err != nil {
		fail(err)
	}
	if *cmpOut != "" {
		if err := writeComparison(*cmpOut, cmp); err != nil {
			fail(err)
		}
	}
	regressed := cmp.Regressed()
	if *fleetBaseline != "" {
		fleetBase, err := readBench(*fleetBaseline)
		if err != nil {
			fail(err)
		}
		fleetCmp, err := adaptmr.CompareBenches(fleetBase, fleetBench, *tol)
		if err != nil {
			fail(err)
		}
		fmt.Printf("\nfleet workload (%s):\n", fleetBench.Workload)
		if err := fleetCmp.WriteText(os.Stdout); err != nil {
			fail(err)
		}
		regressed = regressed || fleetCmp.Regressed()
	}
	if *onlineBaseline != "" {
		onlineBase, err := readBench(*onlineBaseline)
		if err != nil {
			fail(err)
		}
		onlineCmp, err := adaptmr.CompareBenches(onlineBase, onlineBench, *tol)
		if err != nil {
			fail(err)
		}
		fmt.Printf("\nonline workload (%s):\n", onlineBench.Workload)
		if err := onlineCmp.WriteText(os.Stdout); err != nil {
			fail(err)
		}
		regressed = regressed || onlineCmp.Regressed()
	}
	if err := prof.Stop(); err != nil {
		fail(err)
	}
	if regressed {
		os.Exit(1)
	}
}

func cmdCompare(args []string) {
	fs := flag.NewFlagSet("adaptreport compare", flag.ExitOnError)
	tol := fs.Float64("tol", 0.05, "relative regression tolerance on gated metrics")
	cmpOut := fs.String("o", "",
		"write the comparison here too (JSON when the path ends in .json, the text table otherwise)")
	lf := cliutil.BindLogFlag(fs)
	fs.Parse(args)
	initLogger(lf)
	if fs.NArg() != 2 {
		fail(fmt.Errorf("compare needs exactly two bench JSON paths, got %d", fs.NArg()))
	}
	base, err := readBench(fs.Arg(0))
	if err != nil {
		fail(err)
	}
	cand, err := readBench(fs.Arg(1))
	if err != nil {
		fail(err)
	}
	cmp, err := adaptmr.CompareBenches(base, cand, *tol)
	if err != nil {
		fail(err)
	}
	if err := cmp.WriteText(os.Stdout); err != nil {
		fail(err)
	}
	if *cmpOut != "" {
		if err := writeComparison(*cmpOut, cmp); err != nil {
			fail(err)
		}
	}
	if cmp.Regressed() {
		os.Exit(1)
	}
}

// writeComparison writes the rendered comparison to path: JSON (the full
// Comparison struct) when the path ends in .json, the benchstat-style
// text table otherwise. Written even on FAIL, so CI can upload the
// verdict as an artifact before the gate's exit status stops the job.
func writeComparison(path string, cmp adaptmr.Comparison) error {
	if strings.HasSuffix(path, ".json") {
		return writeJSONFile(path, cmp)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := cmp.WriteText(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// sweepRecord is the JSON artifact produced by gate -sweep-out: the
// serial vs parallel timing of the 16-pair profile sweep plus the
// byte-identity verdict.
type sweepRecord struct {
	Bench           string  `json:"bench"`
	Pairs           int     `json:"pairs"`
	Workers         int     `json:"workers"`
	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	Speedup         float64 `json:"speedup"`
	Evaluations     int     `json:"evaluations"`
	Identical       bool    `json:"identical"`
}

// writeSweep runs the full 16-pair profile sweep twice — serial and with
// the requested worker count — verifies the profiles are byte-identical
// and the evaluation count unchanged, and records the wall-clock speedup.
func writeSweep(sf *simFlags, parallel int, path string) error {
	cfg, wl, _, err := sf.setup()
	if err != nil {
		return err
	}
	workers := parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	profile := func(n int) ([]adaptmr.Profile, int, float64, error) {
		tuner := adaptmr.NewTuner(cfg, wl.Job, adaptmr.WithParallelism(n))
		start := time.Now()
		profs, err := tuner.Profile()
		if err != nil {
			return nil, 0, 0, err
		}
		return profs, tuner.Evaluations(), time.Since(start).Seconds(), nil
	}

	serial, serialEvals, serialSecs, err := profile(1)
	if err != nil {
		return err
	}
	par, parEvals, parSecs, err := profile(workers)
	if err != nil {
		return err
	}

	serialJSON, err := json.Marshal(serial)
	if err != nil {
		return err
	}
	parJSON, err := json.Marshal(par)
	if err != nil {
		return err
	}
	identical := bytes.Equal(serialJSON, parJSON) && serialEvals == parEvals
	rec := sweepRecord{
		Bench:           *sf.bench,
		Pairs:           len(serial),
		Workers:         workers,
		SerialSeconds:   serialSecs,
		ParallelSeconds: parSecs,
		Speedup:         serialSecs / parSecs,
		Evaluations:     parEvals,
		Identical:       identical,
	}
	if err := writeJSONFile(path, rec); err != nil {
		return err
	}
	fmt.Printf("sweep: %d pairs, serial %.2fs, %d workers %.2fs (%.2fx), identical=%v -> %s\n",
		rec.Pairs, rec.SerialSeconds, rec.Workers, rec.ParallelSeconds, rec.Speedup, rec.Identical, path)
	if !identical {
		return fmt.Errorf("parallel profile sweep diverged from serial output")
	}
	return nil
}

func readBench(path string) (adaptmr.Bench, error) {
	var b adaptmr.Bench
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}

func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func writeJSONFile(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := writeJSON(f, v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
