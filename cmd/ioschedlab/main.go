// Command ioschedlab explores the microbenchmarks of the paper's empirical
// study on a single simulated host: Sysbench sequential writing (Fig 1),
// the parallel-dd workload, and the scheduler switch-cost probe (Fig 5).
//
// Examples:
//
//	ioschedlab -mode sysbench -vms 3
//	ioschedlab -mode dd -vms 4 -pair ad
//	ioschedlab -mode switch -from cc -to ad -vms 4
package main

import (
	"flag"
	"fmt"
	"os"

	"adaptmr/internal/guestio"
	"adaptmr/internal/iosched"
	"adaptmr/internal/workloads"
	"adaptmr/internal/xen"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ioschedlab:", err)
	os.Exit(1)
}

func main() {
	mode := flag.String("mode", "sysbench", "sysbench, dd, or switch")
	vms := flag.Int("vms", 4, "VMs on the host")
	pairArg := flag.String("pair", "", "single pair to run (default: sweep all 16)")
	fromArg := flag.String("from", "cc", "switch probe: first state")
	toArg := flag.String("to", "ad", "switch probe: second state")
	ddMB := flag.Int64("ddmb", 600, "dd bytes per VM, in MB")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	hostCfg := xen.DefaultHostConfig()
	guestCfg := guestio.DefaultConfig()
	newHost := func() *workloads.MicroHost {
		return workloads.NewMicroHost(*vms, hostCfg, guestCfg, *seed)
	}

	pairs := iosched.AllPairs()
	if *pairArg != "" {
		p, err := iosched.ParsePair(*pairArg)
		if err != nil {
			fail(err)
		}
		pairs = []iosched.Pair{p}
	}

	switch *mode {
	case "sysbench":
		cfg := workloads.DefaultSysbenchConfig()
		for _, p := range pairs {
			mh := newHost()
			mh.InstallPair(p)
			r := workloads.RunSysbench(mh, cfg)
			fmt.Printf("%s  mean %7.1fs  longest %7.1fs  per-VM", p, r.Mean.Seconds(), r.Longest.Seconds())
			for _, e := range r.PerVM {
				fmt.Printf(" %6.1f", e.Seconds())
			}
			fmt.Println()
		}

	case "dd":
		cfg := workloads.DefaultDDConfig()
		cfg.BytesPerVM = *ddMB << 20
		for _, p := range pairs {
			mh := newHost()
			mh.InstallPair(p)
			d := workloads.RunDD(mh, cfg, nil)
			st := mh.Host.Disk().Stats()
			fmt.Printf("%s  epoch %7.1fs  disk efficiency %4.1f%%  seeks %d\n",
				p, d.Seconds(), 100*st.TransferTime.Seconds()/st.BusyTime.Seconds(), st.Seeks)
		}

	case "switch":
		from, err := iosched.ParsePair(*fromArg)
		if err != nil {
			fail(err)
		}
		to, err := iosched.ParsePair(*toArg)
		if err != nil {
			fail(err)
		}
		cfg := workloads.DefaultDDConfig()
		cfg.BytesPerVM = *ddMB << 20
		cost := workloads.SwitchCost(newHost, cfg, from, to)
		back := workloads.SwitchCost(newHost, cfg, to, from)
		fmt.Printf("cost %s -> %s: %.1fs\n", from, to, cost.Seconds())
		fmt.Printf("cost %s -> %s: %.1fs (asymmetry %.1fs)\n", to, from, back.Seconds(), (cost - back).Seconds())

	default:
		fail(fmt.Errorf("unknown mode %q", *mode))
	}
}
