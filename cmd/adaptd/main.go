// Command adaptd serves the adaptmr simulator as a long-running HTTP
// daemon — tuning as a service. It exposes:
//
//	POST /v1/run         execute one job under an explicit phase plan
//	POST /v1/tune        run the adaptive meta-scheduler
//	POST /v1/bruteforce  exhaustively search every plan
//	GET  /healthz        liveness (200 ok, 503 while draining)
//	GET  /statusz        JSON status: queue, workers, tallies, cache
//	GET  /metrics        Prometheus text exposition
//
// Requests execute on a bounded worker pool (-workers) behind a bounded
// admission queue (-queue-depth); a full queue answers 429 with
// Retry-After. Identical in-flight requests are coalesced onto a single
// evaluation. Each request is bounded by -request-timeout (requests may
// ask for less via timeout_ms). SIGINT/SIGTERM drain gracefully:
// admission stops, in-flight work finishes and is answered, then the
// listener closes.
//
// Examples:
//
//	adaptd
//	adaptd -addr :8080 -workers 4 -parallel 2
//	adaptd -evalcache /var/cache/adaptmr -request-timeout 5m
//
//	curl -s localhost:7070/v1/tune -d '{"job":{"bench":"sort","input_mb":512}}'
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"adaptmr/internal/cliutil"
	"adaptmr/internal/server"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "adaptd:", err)
	os.Exit(1)
}

func main() {
	sf := cliutil.BindServerFlags(flag.CommandLine)
	workers := flag.Int("workers", 2, "concurrently executing requests")
	parallel := cliutil.BindParallelFlag(flag.CommandLine)
	evalCache := cliutil.BindEvalCacheFlag(flag.CommandLine)
	checkInv := cliutil.BindCheckFlag(flag.CommandLine)
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute,
		"how long shutdown waits for in-flight requests before aborting them")
	flag.Parse()

	if err := sf.Validate(); err != nil {
		fail(err)
	}
	if *workers < 1 {
		fail(fmt.Errorf("-workers must be at least 1, got %d", *workers))
	}

	srv, err := server.New(server.Config{
		Workers:         *workers,
		QueueDepth:      sf.QueueDepth,
		RequestTimeout:  sf.RequestTimeout,
		Parallelism:     *parallel,
		EvalCacheDir:    *evalCache,
		CheckInvariants: *checkInv,
	})
	if err != nil {
		fail(err)
	}

	httpSrv := &http.Server{Addr: sf.Addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "adaptd: listening on %s (workers %d, queue %d, request timeout %v)\n",
			sf.Addr, *workers, sf.QueueDepth, sf.RequestTimeout)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fail(err)
	case <-ctx.Done():
	}

	// Drain: stop admitting (healthz flips to 503, new POSTs answer 503),
	// let in-flight requests finish and be answered, then close the
	// listener. The HTTP shutdown runs after the pool drain so responses
	// for drained work still reach their clients.
	fmt.Fprintln(os.Stderr, "adaptd: draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "adaptd: drain incomplete:", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "adaptd: http shutdown:", err)
	}
	fmt.Fprintln(os.Stderr, "adaptd: bye")
}
