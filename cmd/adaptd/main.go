// Command adaptd serves the adaptmr simulator as a long-running HTTP
// daemon — tuning as a service. It exposes:
//
//	POST /v1/run         execute one job under an explicit phase plan
//	POST /v1/tune        run the adaptive meta-scheduler
//	POST /v1/bruteforce  exhaustively search every plan
//	GET  /v1/stream      follow a streamed run live (SSE, ?id=<run_id>)
//	GET  /healthz        liveness (200 ok while the process is up)
//	GET  /readyz         readiness (200 ready, 503 while draining)
//	GET  /statusz        JSON status: build, queue, workers, tallies
//	GET  /metrics        Prometheus text exposition
//	GET  /debug/pprof/   runtime profiling (only with -pprof)
//
// Requests execute on a bounded worker pool (-workers) behind a bounded
// admission queue (-queue-depth); a full queue answers 429 with
// Retry-After. Identical in-flight requests are coalesced onto a single
// evaluation. Each request is bounded by -request-timeout (requests may
// ask for less via timeout_ms). A /v1/run request naming a run_id
// streams its live elevator-depth/throughput timeseries at /v1/stream.
// Diagnostics are structured logs on stderr (-log text|json[:level]),
// each request's lines correlated by a per-request id. SIGINT/SIGTERM
// drain gracefully: admission stops (readyz flips to 503), in-flight
// work finishes and is answered, then the listener closes.
//
// Examples:
//
//	adaptd
//	adaptd -addr :8080 -workers 4 -parallel 2 -log json:debug
//	adaptd -evalcache /var/cache/adaptmr -request-timeout 5m -pprof
//
//	curl -s localhost:7070/v1/tune -d '{"job":{"bench":"sort","input_mb":512}}'
//	curl -s localhost:7070/v1/run -d '{"plan":["cc"],"run_id":"r1"}' &
//	curl -sN localhost:7070/v1/stream?id=r1
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"adaptmr/internal/cliutil"
	"adaptmr/internal/server"
)

func main() {
	sf := cliutil.BindServerFlags(flag.CommandLine)
	workers := flag.Int("workers", 2, "concurrently executing requests")
	parallel := cliutil.BindParallelFlag(flag.CommandLine)
	evalCache := cliutil.BindEvalCacheFlag(flag.CommandLine)
	checkInv := cliutil.BindCheckFlag(flag.CommandLine)
	logFlag := cliutil.BindLogFlag(flag.CommandLine)
	pprofFlag := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute,
		"how long shutdown waits for in-flight requests before aborting them")
	flag.Parse()

	logger, err := logFlag.Logger()
	if err != nil {
		fmt.Fprintln(os.Stderr, "adaptd:", err)
		os.Exit(1)
	}
	fail := func(err error) {
		logger.Error("fatal", "err", err)
		os.Exit(1)
	}

	if err := sf.Validate(); err != nil {
		fail(err)
	}
	if *workers < 1 {
		fail(fmt.Errorf("-workers must be at least 1, got %d", *workers))
	}

	srv, err := server.New(server.Config{
		Workers:         *workers,
		QueueDepth:      sf.QueueDepth,
		RequestTimeout:  sf.RequestTimeout,
		Parallelism:     *parallel,
		EvalCacheDir:    *evalCache,
		CheckInvariants: *checkInv,
		Logger:          logger,
		EnablePprof:     *pprofFlag,
	})
	if err != nil {
		fail(err)
	}

	httpSrv := &http.Server{Addr: sf.Addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", sf.Addr, "workers", *workers,
			"queue_depth", sf.QueueDepth, "request_timeout", sf.RequestTimeout, "pprof", *pprofFlag)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fail(err)
	case <-ctx.Done():
	}

	// Drain: stop admitting (readyz flips to 503, new POSTs answer 503),
	// let in-flight requests finish and be answered, then close the
	// listener. The HTTP shutdown runs after the pool drain so responses
	// for drained work still reach their clients.
	logger.Info("draining", "timeout", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		logger.Warn("drain incomplete", "err", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		logger.Warn("http shutdown", "err", err)
	}
	logger.Info("bye")
}
