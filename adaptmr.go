// Package adaptmr is a simulation-backed reproduction of "Adaptive Disk
// I/O Scheduling for MapReduce in Virtualized Environment" (Ibrahim et
// al., ICPP 2011): a full virtualized-Hadoop testbed model — Xen-style
// two-level block scheduling with the four Linux elevators, guest page
// cache and filesystem, HDFS, MapReduce runtime, and cluster network —
// plus the paper's contribution, a meta-scheduler that adaptively switches
// the (VMM, VM) disk-scheduler pair at phase boundaries of a single job.
//
// The package exposes a small facade over the internal engine. Entry
// points take functional options (WithTracer, WithMetrics,
// WithParallelism, WithEvalCache) and return errors instead of panicking:
//
//	cfg := adaptmr.DefaultClusterConfig()
//	job := adaptmr.SortBenchmark(512 << 20).Job
//	pair, err := adaptmr.ParsePair("cfq,cfq")
//	res, err := adaptmr.Run(cfg, job, pair)
//	fmt.Println(res.Duration)
//
//	tuner := adaptmr.NewTuner(cfg, job, adaptmr.WithParallelism(8))
//	out, err := tuner.Tune()
//	fmt.Println(out.Plan, out.ImprovementOverDefault())
//
// All simulations are deterministic for a given configuration and seed —
// including under parallel evaluation: results, traces and metrics are
// byte-identical at every parallelism setting.
package adaptmr

import (
	"context"
	"fmt"
	"io"

	"adaptmr/internal/check"
	"adaptmr/internal/cluster"
	"adaptmr/internal/control"
	"adaptmr/internal/core"
	"adaptmr/internal/experiments"
	"adaptmr/internal/iosched"
	"adaptmr/internal/mapred"
	"adaptmr/internal/obs"
	"adaptmr/internal/obs/perfstat"
	"adaptmr/internal/sim"
	"adaptmr/internal/workloads"
)

// Scheduler names accepted anywhere a scheduler is selected.
const (
	Noop         = iosched.Noop
	Deadline     = iosched.Deadline
	Anticipatory = iosched.Anticipatory
	CFQ          = iosched.CFQ
)

// Pair is a (VMM scheduler, VM scheduler) configuration.
type Pair = iosched.Pair

// DefaultPair is the stock (CFQ, CFQ) configuration.
var DefaultPair = iosched.DefaultPair

// AllPairs enumerates the 16 pair configurations.
func AllPairs() []Pair { return iosched.AllPairs() }

// ParsePair parses "ad" or "(anticipatory, deadline)" forms.
func ParsePair(s string) (Pair, error) { return iosched.ParsePair(s) }

// MustParsePair is ParsePair for known-valid literals.
func MustParsePair(s string) Pair {
	p, err := iosched.ParsePair(s)
	if err != nil {
		panic(err)
	}
	return p
}

// ClusterConfig describes the virtual testbed (hosts, VMs, disk, guest OS,
// network, HDFS).
type ClusterConfig = cluster.Config

// DefaultClusterConfig returns the paper's testbed: 4 hosts × 4 VMs, one
// SATA disk per host, 1 GbE, 64 MB HDFS blocks with 2 replicas.
func DefaultClusterConfig() ClusterConfig { return cluster.DefaultConfig() }

// JobConfig describes a MapReduce job (sizes, ratios, CPU costs, slots).
type JobConfig = mapred.Config

// DefaultJobConfig returns neutral sort-like job settings.
func DefaultJobConfig() JobConfig { return mapred.DefaultConfig() }

// JobResult summarises one executed job.
type JobResult = mapred.Result

// Workload couples a job configuration with the paper's disk-operation
// classification.
type Workload = workloads.Benchmark

// WordCountBenchmark is the light-disk wordcount (with combiner) workload.
func WordCountBenchmark(inputPerVM int64) Workload { return workloads.WordCount(inputPerVM) }

// WordCountNoCombinerBenchmark is the moderate-disk wordcount variant.
func WordCountNoCombinerBenchmark(inputPerVM int64) Workload {
	return workloads.WordCountNoCombiner(inputPerVM)
}

// SortBenchmark is the heavy-disk stream-sort workload.
func SortBenchmark(inputPerVM int64) Workload { return workloads.Sort(inputPerVM) }

// BenchmarkSuite returns the paper's three benchmarks.
func BenchmarkSuite(inputPerVM int64) []Workload { return workloads.Suite(inputPerVM) }

// ---------------------------------------------------------------------------
// Options (facade API v3)
// ---------------------------------------------------------------------------

// Option configures an entry point (Run, NewTuner, TuneChain, ...). The
// zero set of options reproduces the default behaviour: no observation,
// GOMAXPROCS evaluation workers, no on-disk cache.
type Option func(*options)

type options struct {
	tracer       *obs.Tracer
	metrics      *obs.Registry
	journeys     *obs.JourneyLog
	decisions    *obs.DecisionLog
	parallelism  int
	evalCacheDir string
	evalCache    *core.EvalCache
	ctx          context.Context
	check        *check.Set
	perf         bool
	profile      *sim.PerfProfile
	poolReqs     *bool
	online       *control.Policy
}

func buildOptions(opts []Option) options {
	var o options
	for _, opt := range opts {
		if opt != nil {
			opt(&o)
		}
	}
	return o
}

// apply copies the observation options onto a cluster config.
func (o options) apply(cfg ClusterConfig) ClusterConfig {
	if o.tracer != nil {
		cfg.Obs.Trace = o.tracer
	}
	if o.metrics != nil {
		cfg.Obs.Metrics = o.metrics
	}
	if o.journeys != nil {
		cfg.Obs.Journeys = o.journeys
	}
	if o.decisions != nil {
		cfg.Obs.Decisions = o.decisions
	}
	if o.check != nil {
		cfg.Check = o.check
	}
	if o.profile != nil || o.poolReqs != nil {
		p := *sim.DefaultPerfProfile()
		if o.profile != nil {
			p = *o.profile
		}
		if o.poolReqs != nil {
			p.PoolRequests = *o.poolReqs
		}
		cfg.Perf = &p
	}
	return cfg
}

// verify runs the end-of-run invariant audit when checking is enabled and
// the run completed; abandoned runs (err != nil) skip the audit because a
// half-drained simulation legitimately holds in-flight requests.
func (o options) verify(err error) error {
	if err != nil || o.check == nil {
		return err
	}
	o.check.Finalize()
	if cerr := o.check.Err(); cerr != nil {
		return fmt.Errorf("adaptmr: invariant check failed: %w", cerr)
	}
	return nil
}

// WithTracer records every simulated layer's events into t (export with
// t.WriteFile / t.WriteJSON; the format loads in Perfetto).
func WithTracer(t *Tracer) Option { return func(o *options) { o.tracer = t } }

// WithMetrics aggregates counters/gauges/histograms into m.
func WithMetrics(m *Metrics) Option { return func(o *options) { o.metrics = m } }

// WithJourney threads per-request journey tracing through the two-level
// block stack: every guest submission gets a journey id that follows it
// across the blkfront/blkback ring into the Dom0 queue and onto the disk,
// and completes into an ns-exact latency decomposition (guest queueing,
// switch stalls, ring transit, Dom0 queueing, seek/rotation/transfer).
// The aggregate lands on JobResult.Journeys (and on RunResult.Journeys
// for tuner entry points).
func WithJourney() Option {
	return func(o *options) { o.journeys = obs.NewJourneyLog() }
}

// WithDecisionLog records scheduler decision provenance — why each
// elevator dispatched what it dispatched (deadline expiry vs batch
// continuation, anticipation outcomes, CFQ slice lifecycle) plus
// queue-level merges and switch drains — tallied per queue level onto
// JobResult.Decisions (and RunResult.Decisions for tuner entry points).
// The hook is nil when this option is absent, so the disabled path stays
// allocation-free.
func WithDecisionLog() Option {
	return func(o *options) { o.decisions = obs.NewDecisionLog() }
}

// JourneySummary aggregates a run's request-journey latency
// decompositions (see WithJourney); the per-stage nanoseconds sum exactly
// to the total.
type JourneySummary = obs.JourneySummary

// DecisionSummary is a run's per-queue-level scheduler decision tallies
// (see WithDecisionLog).
type DecisionSummary = obs.DecisionSummary

// WithInvariantChecks attaches the runtime correctness harness
// (internal/check) to every block queue the entry point builds: each
// request's lifecycle, the queue depth, elevator-switch drains, merge byte
// conservation and the schedulers' starvation bounds are verified as the
// simulation runs, and an end-of-run audit confirms nothing leaked. A
// violation surfaces as an error from the entry point. Overhead is a few
// percent; the zero-option default runs unchecked.
func WithInvariantChecks() Option {
	return func(o *options) { o.check = check.NewSet() }
}

// WithParallelism sets the evaluation worker count for tuners and chain
// tuning. n <= 0 (the default) means GOMAXPROCS. Output is byte-identical
// at every setting.
func WithParallelism(n int) Option { return func(o *options) { o.parallelism = n } }

// WithEvalCache enables the on-disk content-addressed evaluation cache
// rooted at dir: repeated evaluations of the same (cluster, job, plan)
// triple are answered from disk instead of re-simulated. The cache is
// bypassed while a tracer or metrics registry is attached, because cached
// results cannot replay their observations.
func WithEvalCache(dir string) Option { return func(o *options) { o.evalCacheDir = dir } }

// WithEvalCacheHandle is WithEvalCache for an already-open cache. A
// long-lived holder (the adaptd service) shares one handle across many
// tuners so hit/miss/bypass tallies aggregate in one place
// (EvalCache.Stats). Takes precedence over WithEvalCache when both are
// supplied.
func WithEvalCacheHandle(c *EvalCache) Option { return func(o *options) { o.evalCache = c } }

// WithPerfStats collects engine self-telemetry around each executed
// simulation: wall clock, events processed, events/sec, allocation and GC
// deltas. Run places the measurement on JobResult.Perf; tuner entry points
// place per-evaluation stats on each RunResult.Perf and publish perf.*
// gauges into the attached metrics registry. Off by default: the probe's
// runtime.ReadMemStats calls briefly stop the world, and the values are
// machine-dependent (never cached, never byte-deterministic).
func WithPerfStats() Option { return func(o *options) { o.perf = true } }

// PerfStat is one run's engine self-telemetry (see WithPerfStats).
type PerfStat = perfstat.Stat

// PerfProfile selects the engine-layer allocation strategy (event and
// request pooling). Profiles change only where objects live, never what
// the simulation computes: results are byte-identical across profiles,
// and the evaluation-cache digest deliberately excludes them.
type PerfProfile = sim.PerfProfile

// DefaultPerfProfile returns the stock profile: event pooling and request
// pooling both enabled.
func DefaultPerfProfile() *PerfProfile { return sim.DefaultPerfProfile() }

// WithEngineProfile overrides the engine allocation profile for the runs
// this entry point executes. nil (or omitting the option) keeps
// DefaultPerfProfile. The profile affects throughput and allocation
// behaviour only; simulated output is byte-identical across profiles.
func WithEngineProfile(p *PerfProfile) Option {
	return func(o *options) { o.profile = p }
}

// WithRequestPool enables or disables block-request pooling, keeping the
// rest of the engine profile at its current setting (WithEngineProfile if
// supplied, DefaultPerfProfile otherwise). WithRequestPool(false) is the
// escape hatch for callers that retain *Request pointers beyond the
// completion callback and therefore must opt out of recycling.
func WithRequestPool(enabled bool) Option {
	return func(o *options) { o.poolReqs = &enabled }
}

// WithContext bounds every evaluation with ctx: cancellation or deadline
// expiry is checked before each evaluation and periodically inside the
// simulation event loop, so a tuning search can be abandoned mid-run.
// The entry point reports the context's error. A tuner whose context has
// fired should be discarded (failed evaluations are memoised).
//
// Honoured by Run and every NewTuner entry point (Tune, RunPlan,
// BruteForce, Profile); RunChain/TuneChain/RunFineGrained currently
// ignore it.
func WithContext(ctx context.Context) Option { return func(o *options) { o.ctx = ctx } }

// CheckSet aggregates runtime invariant checkers and their violations
// (see WithInvariantChecks). Experiment drivers that build cluster
// configs directly can attach one via ClusterConfig.Check and audit it
// with Finalize + Err once the runs complete. Safe for concurrent use
// across parallel evaluations.
type CheckSet = check.Set

// NewCheckSet returns an empty invariant-checker set.
func NewCheckSet() *CheckSet { return check.NewSet() }

// EvalCache is the on-disk content-addressed evaluation cache (see
// WithEvalCache / WithEvalCacheHandle). Safe for concurrent use.
type EvalCache = core.EvalCache

// EvalCacheStats are an EvalCache's lifetime hit/miss/bypass tallies.
type EvalCacheStats = core.EvalCacheStats

// OpenEvalCache opens (creating if needed) an evaluation cache rooted at
// dir; attach it with WithEvalCacheHandle.
func OpenEvalCache(dir string) (*EvalCache, error) { return core.OpenEvalCache(dir) }

// Run executes one job under a single scheduler pair on a fresh
// deterministic cluster and returns its result. WithTracer/WithMetrics
// attach observation, WithEngineProfile/WithRequestPool select the engine
// allocation strategy; WithParallelism and WithEvalCache are accepted but
// have no effect on a single direct run.
func Run(cfg ClusterConfig, job JobConfig, pair Pair, opts ...Option) (JobResult, error) {
	if err := job.Validate(); err != nil {
		return JobResult{}, fmt.Errorf("adaptmr: %w", err)
	}
	o := buildOptions(opts)
	cfg = o.apply(cfg)
	cl := cluster.New(cfg)
	cl.InstallPair(pair)
	j := mapred.NewJob(cl, job)
	j.Start(nil)
	probe := perfstat.Start(o.perf, cl.Eng)
	if err := core.RunEngine(o.ctx, cl.Eng); err != nil {
		return JobResult{}, fmt.Errorf("adaptmr: job %q abandoned: %w", job.Name, err)
	}
	perf := probe.Stop()
	if !j.Done() {
		return JobResult{}, fmt.Errorf("adaptmr: job %q did not complete (simulation drained early)", job.Name)
	}
	if err := o.verify(nil); err != nil {
		return JobResult{}, err
	}
	perfstat.Publish(cfg.Obs.Metrics, perf)
	res := j.Result()
	res.Perf = perf
	res.Journeys = cfg.Obs.Journeys.Summary()
	res.Decisions = cfg.Obs.Decisions.Summary()
	return res, nil
}

// ---------------------------------------------------------------------------
// Observability
// ---------------------------------------------------------------------------

// Tracer records span/instant events across every simulated layer (disk,
// elevators, Xen ring, network, MapReduce tasks and phases) and exports
// Chrome trace-event JSON loadable in Perfetto or chrome://tracing.
type Tracer = obs.Tracer

// NewTracer returns an empty tracer; attach it with WithTracer.
func NewTracer() *Tracer { return obs.NewTracer() }

// Metrics is a registry of counters, gauges and histograms the simulation
// populates (per-level I/O latency, merge and seek behaviour, scheduler
// decisions, switch costs, per-phase volumes).
type Metrics = obs.Registry

// NewMetrics returns an empty metrics registry; attach it with
// WithMetrics.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// MetricsSnapshot is an exportable (JSON/CSV) copy of a metrics registry;
// JobResult.Metrics and RunResult.Metrics carry one per executed job.
type MetricsSnapshot = obs.Snapshot

// Plan assigns a scheduler pair to each phase of a job.
type Plan = core.Plan

// Scheme selects the phase granularity of a plan.
type Scheme = core.Scheme

// Phase schemes: two phases (switch at maps-done, the paper's default for
// ≥4 map waves) or three (additionally at shuffle-done).
const (
	TwoPhases   = core.TwoPhases
	ThreePhases = core.ThreePhases
)

// UniformPlan uses one pair for every phase (no switches).
func UniformPlan(scheme Scheme, p Pair) Plan { return core.Uniform(scheme, p) }

// NewPlan builds an explicit phase plan.
func NewPlan(scheme Scheme, pairs ...Pair) Plan { return core.NewPlan(scheme, pairs...) }

// TuningResult is the meta-scheduler's outcome.
type TuningResult = core.HeuristicResult

// Profile is one pair's profiled per-phase durations.
type Profile = core.Profile

// Tuner runs the paper's adaptive meta-scheduler for one job on one
// testbed configuration. Its evaluations execute on a worker pool
// (WithParallelism) with single-flight memoisation, and may be served
// from an on-disk cache (WithEvalCache); results are identical to a
// serial, uncached run.
type Tuner struct {
	runner  *core.Runner
	scheme  Scheme
	pairs   []Pair
	initErr error
	opts    options
}

// NewTuner creates a tuner over all 16 pairs with the two-phase scheme.
// Options: WithTracer, WithMetrics, WithParallelism, WithEvalCache,
// WithEngineProfile, WithRequestPool.
func NewTuner(cfg ClusterConfig, job JobConfig, opts ...Option) *Tuner {
	o := buildOptions(opts)
	cfg = o.apply(cfg)
	r := core.NewRunner(cfg, job)
	r.Parallelism = o.parallelism
	r.Context = o.ctx
	r.CollectPerf = o.perf
	t := &Tuner{runner: r, scheme: core.TwoPhases, opts: o}
	if err := job.Validate(); err != nil {
		t.initErr = fmt.Errorf("adaptmr: %w", err)
		return t
	}
	switch {
	case o.evalCache != nil:
		r.DiskCache = o.evalCache
	case o.evalCacheDir != "":
		cache, err := core.OpenEvalCache(o.evalCacheDir)
		if err != nil {
			t.initErr = err
		} else {
			r.DiskCache = cache
		}
	}
	return t
}

// WithScheme selects the phase scheme.
func (t *Tuner) WithScheme(s Scheme) *Tuner { t.scheme = s; return t }

// WithCandidates restricts the candidate pairs.
func (t *Tuner) WithCandidates(pairs []Pair) *Tuner { t.pairs = pairs; return t }

// Tune profiles the candidates and runs the heuristic (Algorithm 1),
// returning the chosen plan alongside the default and best-single
// reference runs.
func (t *Tuner) Tune() (TuningResult, error) {
	if t.initErr != nil {
		return TuningResult{}, t.initErr
	}
	res, err := core.Heuristic(t.runner, t.scheme, t.pairs)
	if err := t.opts.verify(err); err != nil {
		return TuningResult{}, err
	}
	return res, nil
}

// RunPlan executes the job under an explicit plan (switching pairs at
// phase boundaries, switch costs included).
func (t *Tuner) RunPlan(p Plan) (core.RunResult, error) {
	if t.initErr != nil {
		return core.RunResult{}, t.initErr
	}
	res, err := t.runner.Run(p)
	if err := t.opts.verify(err); err != nil {
		return core.RunResult{}, err
	}
	return res, nil
}

// BruteForce exhaustively evaluates every plan (S^P job executions,
// memoised, batched onto the worker pool) and returns the optimum —
// feasible here because the testbed is simulated.
func (t *Tuner) BruteForce() (core.RunResult, error) {
	if t.initErr != nil {
		return core.RunResult{}, t.initErr
	}
	res, err := core.BruteForce(t.runner, t.scheme, t.pairs)
	if err := t.opts.verify(err); err != nil {
		return core.RunResult{}, err
	}
	return res, nil
}

// Profile runs the job once per candidate pair with no switching and
// returns per-phase durations — the meta-scheduler's profiling stage.
// The runs are independent and execute on the worker pool.
func (t *Tuner) Profile() ([]Profile, error) {
	if t.initErr != nil {
		return nil, t.initErr
	}
	pairs := t.pairs
	if len(pairs) == 0 {
		pairs = iosched.AllPairs()
	}
	res, err := t.runner.ProfilePairs(pairs)
	if err := t.opts.verify(err); err != nil {
		return nil, err
	}
	return res, nil
}

// Evaluations reports how many distinct job executions the tuner has run
// (disk-cache hits excluded).
func (t *Tuner) Evaluations() int { return t.runner.Evaluations }

// CacheStats reports the attached evaluation cache's hit/miss/bypass
// tallies; ok is false when the tuner runs without an on-disk cache.
// With a shared handle (WithEvalCacheHandle) the tallies span every
// tuner using that handle.
func (t *Tuner) CacheStats() (EvalCacheStats, bool) {
	if t.runner.DiskCache == nil {
		return EvalCacheStats{}, false
	}
	return t.runner.DiskCache.Stats(), true
}

// ---------------------------------------------------------------------------
// Extensions from the paper's future-work agenda
// ---------------------------------------------------------------------------

// FineGrained is the reactive per-host controller sketched in the paper's
// future work: it watches each host's read/write mix and switches the pair
// on regime changes, with no knowledge of job phase boundaries.
type FineGrained = core.FineGrained

// DefaultFineGrained returns the controller with the regime mapping the
// coarse-grained study suggests.
func DefaultFineGrained() *FineGrained { return core.DefaultFineGrained() }

// RunFineGrained executes a job under the reactive controller, returning
// the job result and the number of switch commands issued.
func RunFineGrained(cfg ClusterConfig, job JobConfig, fg *FineGrained, opts ...Option) (JobResult, int, error) {
	if err := job.Validate(); err != nil {
		return JobResult{}, 0, fmt.Errorf("adaptmr: %w", err)
	}
	o := buildOptions(opts)
	res, switches, err := core.RunFineGrained(o.apply(cfg), job, fg)
	if err := o.verify(err); err != nil {
		return JobResult{}, 0, err
	}
	return res, switches, nil
}

// ChainResult is a chained (Pig-style) multi-job execution.
type ChainResult = core.ChainResult

// ChainTuning is the result of tuning a chain stage by stage.
type ChainTuning = core.ChainTuning

// RunChain executes MapReduce stages back to back on one cluster, applying
// one phase plan per stage; later stages read the data volume the previous
// stage produced.
func RunChain(cfg ClusterConfig, stages []JobConfig, plans []Plan, opts ...Option) (ChainResult, error) {
	for _, s := range stages {
		if err := s.Validate(); err != nil {
			return ChainResult{}, fmt.Errorf("adaptmr: %w", err)
		}
	}
	o := buildOptions(opts)
	res, err := core.RunChain(o.apply(cfg), stages, plans)
	if err := o.verify(err); err != nil {
		return ChainResult{}, err
	}
	return res, nil
}

// TuneChain tunes each stage with the two-phase heuristic and compares the
// composed chain against the all-default execution. WithParallelism sets
// each stage's evaluation worker count.
func TuneChain(cfg ClusterConfig, stages []JobConfig, opts ...Option) (ChainTuning, error) {
	for _, s := range stages {
		if err := s.Validate(); err != nil {
			return ChainTuning{}, fmt.Errorf("adaptmr: %w", err)
		}
	}
	o := buildOptions(opts)
	res, err := core.TuneChain(o.apply(cfg), stages, o.parallelism)
	if err := o.verify(err); err != nil {
		return ChainTuning{}, err
	}
	return res, nil
}

// Predictor estimates plan times from profiles plus a switch-cost model
// without running simulations (the paper's envisioned prediction model).
type Predictor = core.Predictor

// NewPredictor builds a predictor over profiling data; cost may be nil to
// treat switches as free.
func NewPredictor(profiles []core.Profile, cost func(from, to Pair) sim.Duration) *Predictor {
	return core.NewPredictor(profiles, cost)
}

// ExperimentsConfig parameterises the paper-artefact generators.
type ExperimentsConfig = experiments.Config

// PaperExperiments returns the full-paper experiment configuration.
func PaperExperiments() ExperimentsConfig { return experiments.Default() }

// QuickExperiments returns a scaled-down configuration for smoke runs.
func QuickExperiments() ExperimentsConfig { return experiments.Quick() }

// RunExperiments regenerates the paper's tables and figures (all of them,
// or the named subset: "fig1".."fig8", "table1", "table2") and writes the
// rendered artefacts to w.
func RunExperiments(cfg ExperimentsConfig, w io.Writer, only ...string) error {
	return experiments.All(cfg, w, only...)
}

// RunExperimentsCSV is RunExperiments with per-artefact CSV data written to
// csvDir (skipped when csvDir is empty).
func RunExperimentsCSV(cfg ExperimentsConfig, w io.Writer, csvDir string, only ...string) error {
	return experiments.AllWithCSV(cfg, w, csvDir, only...)
}
