package adaptmr_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"adaptmr"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden report files")

func reportConfig(hosts, vms int, seed int64) adaptmr.ClusterConfig {
	cfg := adaptmr.DefaultClusterConfig()
	cfg.Hosts = hosts
	cfg.VMsPerHost = vms
	cfg.Seed = seed
	return cfg
}

func runSortReport(t *testing.T, cfg adaptmr.ClusterConfig, inputMB int64) *adaptmr.Report {
	t.Helper()
	wl := adaptmr.SortBenchmark(inputMB << 20)
	rep, err := adaptmr.RunReport(cfg, wl.Job, adaptmr.DefaultPair, adaptmr.ReportOptions{
		Workload: "sort", InputMB: inputMB,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestReportDeterministic pins the CI-gate prerequisite: two identical
// runs render byte-identical Markdown, HTML and JSON.
func TestReportDeterministic(t *testing.T) {
	render := func() (md, html, js []byte) {
		rep := runSortReport(t, reportConfig(2, 2, 1), 32)
		var mb, hb bytes.Buffer
		if err := rep.WriteMarkdown(&mb); err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteHTML(&hb); err != nil {
			t.Fatal(err)
		}
		j, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return mb.Bytes(), hb.Bytes(), j
	}
	md1, html1, js1 := render()
	md2, html2, js2 := render()
	if !bytes.Equal(md1, md2) {
		t.Fatal("markdown output differs between identical runs")
	}
	if !bytes.Equal(html1, html2) {
		t.Fatal("HTML output differs between identical runs")
	}
	if !bytes.Equal(js1, js2) {
		t.Fatal("JSON output differs between identical runs")
	}
}

// TestReportGolden compares the rendered Markdown for the fixed-seed
// sort run against the committed golden file. Regenerate with
// go test -run TestReportGolden -update-golden .
func TestReportGolden(t *testing.T) {
	rep := runSortReport(t, reportConfig(2, 2, 1), 32)
	var buf bytes.Buffer
	if err := rep.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "report_sort_2x2_seed1.md")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update-golden): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("report drifted from golden file %s;\nrun go test -run TestReportGolden -update-golden . and review the diff\n--- got ---\n%s", path, buf.String())
	}
}

// TestReportProperties checks the structural invariants across several
// configurations: critical-path coverage ≥ 90%, per-layer blame
// partitioning each segment (and the whole path) within float epsilon,
// and phase windows partitioning the makespan.
func TestReportProperties(t *testing.T) {
	const eps = 1e-3 // seconds, float-rendering slack on ns-exact partitions
	configs := []struct {
		hosts, vms int
		seed       int64
		inputMB    int64
		bench      string
	}{
		{2, 2, 1, 32, "sort"},
		{2, 2, 7, 32, "sort"},
		{2, 2, 1, 32, "wordcount"},
	}
	for _, c := range configs {
		cfg := reportConfig(c.hosts, c.vms, c.seed)
		var wl adaptmr.Workload
		switch c.bench {
		case "sort":
			wl = adaptmr.SortBenchmark(c.inputMB << 20)
		case "wordcount":
			wl = adaptmr.WordCountBenchmark(c.inputMB << 20)
		}
		rep, err := adaptmr.RunReport(cfg, wl.Job, adaptmr.DefaultPair, adaptmr.ReportOptions{
			Workload: c.bench, InputMB: c.inputMB,
		})
		if err != nil {
			t.Fatalf("%+v: %v", c, err)
		}

		if rep.Critical.CoverageFrac < 0.9 {
			t.Errorf("%+v: coverage %v < 0.9", c, rep.Critical.CoverageFrac)
		}

		var pathSum float64
		for _, seg := range rep.Critical.Segments {
			var segSum float64
			for _, v := range seg.BlameS {
				if v < 0 {
					t.Errorf("%+v: negative blame %v in %s", c, v, seg.Phase)
				}
				segSum += v
			}
			if math.Abs(segSum-seg.DurationS) > eps {
				t.Errorf("%+v: %s blame sums to %v, segment is %v", c, seg.Phase, segSum, seg.DurationS)
			}
			pathSum += segSum
		}
		if pathSum > rep.Job.MakespanS+eps {
			t.Errorf("%+v: total blame %v exceeds makespan %v", c, pathSum, rep.Job.MakespanS)
		}

		var phaseSum float64
		for _, p := range rep.Phases {
			phaseSum += p.DurationS
		}
		if math.Abs(phaseSum-rep.Job.MakespanS) > eps {
			t.Errorf("%+v: phases sum to %v, makespan %v", c, phaseSum, rep.Job.MakespanS)
		}

		for level, q := range rep.Latency {
			if q.P50Ms > q.P95Ms+1e-9 || q.P95Ms > q.P99Ms+1e-9 {
				t.Errorf("%+v: %s quantiles not monotone: %+v", c, level, q)
			}
		}
	}
}

// TestGateBehaviour pins the regression gate: identical runs pass, a run
// on a cluster with a synthetically slowed disk fails, and mismatched
// configurations refuse to compare.
func TestGateBehaviour(t *testing.T) {
	base := runSortReport(t, reportConfig(2, 2, 1), 32).Bench

	// Identical rerun: no regression.
	same := runSortReport(t, reportConfig(2, 2, 1), 32).Bench
	cmp, err := adaptmr.CompareBenches(base, same, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Regressed() {
		t.Fatalf("identical rerun regressed: %+v", cmp.Deltas)
	}

	// Synthetic slowdown: host 0's disk at half speed must trip the gate.
	slowCfg := reportConfig(2, 2, 1)
	slowCfg.HostDiskSlowdown = map[int]float64{0: 2.0}
	slow := runSortReport(t, slowCfg, 32).Bench
	cmp, err = adaptmr.CompareBenches(base, slow, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.Regressed() {
		t.Fatalf("slowed run passed the gate: base makespan %v, slow %v", base.MakespanS, slow.MakespanS)
	}
	var text strings.Builder
	if err := cmp.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "FAIL") || !strings.Contains(text.String(), "REGRESSED") {
		t.Fatalf("comparison text missing verdicts:\n%s", text.String())
	}

	// Config mismatch errors out.
	other := runSortReport(t, reportConfig(2, 2, 2), 32).Bench
	if _, err := adaptmr.CompareBenches(base, other, 0.05); err == nil {
		t.Fatal("seed mismatch should refuse to compare")
	}
}
