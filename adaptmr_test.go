package adaptmr_test

import (
	"strings"
	"testing"

	"adaptmr"
)

func quickCluster() adaptmr.ClusterConfig {
	cfg := adaptmr.DefaultClusterConfig()
	cfg.Hosts = 2
	cfg.VMsPerHost = 2
	return cfg
}

func TestPairFacade(t *testing.T) {
	ps := adaptmr.AllPairs()
	if len(ps) != 16 {
		t.Fatalf("pairs %d", len(ps))
	}
	p, err := adaptmr.ParsePair("ad")
	if err != nil || p.VMM != adaptmr.Anticipatory || p.VM != adaptmr.Deadline {
		t.Fatalf("ParsePair: %v %v", p, err)
	}
	if adaptmr.MustParsePair("cc") != adaptmr.DefaultPair {
		t.Fatal("default pair")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustParsePair should panic on junk")
		}
	}()
	adaptmr.MustParsePair("zz")
}

func TestRunFacade(t *testing.T) {
	res, err := adaptmr.Run(quickCluster(), adaptmr.SortBenchmark(96<<20).Job, adaptmr.DefaultPair)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Duration <= 0 || res.NumMaps == 0 {
		t.Fatalf("result %+v", res)
	}
	// Run is deterministic: a second identical invocation reproduces the
	// result exactly.
	res2, err := adaptmr.Run(quickCluster(), adaptmr.SortBenchmark(96<<20).Job, adaptmr.DefaultPair)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res2.Duration != res.Duration || res2.NumMaps != res.NumMaps {
		t.Fatalf("Run is not deterministic: %+v vs %+v", res2, res)
	}
}

func TestEngineProfileOptions(t *testing.T) {
	base, err := adaptmr.Run(quickCluster(), adaptmr.SortBenchmark(96<<20).Job, adaptmr.DefaultPair)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Every engine profile must produce byte-identical simulated results —
	// pooling changes where objects live, never what the run computes.
	for _, tc := range []struct {
		name string
		opt  adaptmr.Option
	}{
		{"no-request-pool", adaptmr.WithRequestPool(false)},
		{"explicit-default", adaptmr.WithEngineProfile(&adaptmr.PerfProfile{PoolEvents: true, PoolRequests: true})},
		{"all-off", adaptmr.WithEngineProfile(&adaptmr.PerfProfile{})},
	} {
		res, err := adaptmr.Run(quickCluster(), adaptmr.SortBenchmark(96<<20).Job, adaptmr.DefaultPair, tc.opt)
		if err != nil {
			t.Fatalf("%s: Run: %v", tc.name, err)
		}
		if res.Duration != base.Duration || res.NumMaps != base.NumMaps || res.MapsDoneAt != base.MapsDoneAt {
			t.Fatalf("%s: profile changed the simulation: %+v vs %+v", tc.name, res, base)
		}
	}
	// WithRequestPool composes with WithEngineProfile: the pool flag wins.
	res, err := adaptmr.Run(quickCluster(), adaptmr.SortBenchmark(96<<20).Job, adaptmr.DefaultPair,
		adaptmr.WithEngineProfile(&adaptmr.PerfProfile{PoolEvents: true, PoolRequests: false}),
		adaptmr.WithRequestPool(true))
	if err != nil {
		t.Fatalf("composed: Run: %v", err)
	}
	if res.Duration != base.Duration {
		t.Fatalf("composed profile changed the simulation: %+v vs %+v", res, base)
	}
}

func TestBenchmarkFacade(t *testing.T) {
	suite := adaptmr.BenchmarkSuite(64 << 20)
	if len(suite) != 3 {
		t.Fatalf("suite %d", len(suite))
	}
	if adaptmr.WordCountBenchmark(1).Job.Name != "wordcount" ||
		adaptmr.WordCountNoCombinerBenchmark(1).Job.Name != "wordcount-nc" ||
		adaptmr.SortBenchmark(1).Job.Name != "sort" {
		t.Fatal("benchmark names")
	}
}

func TestTunerFacade(t *testing.T) {
	job := adaptmr.SortBenchmark(96 << 20).Job
	tuner := adaptmr.NewTuner(quickCluster(), job).
		WithScheme(adaptmr.TwoPhases).
		WithCandidates([]adaptmr.Pair{
			adaptmr.DefaultPair,
			adaptmr.MustParsePair("ad"),
			adaptmr.MustParsePair("nc"),
		})
	out, err := tuner.Tune()
	if err != nil {
		t.Fatalf("Tune: %v", err)
	}
	if out.Duration <= 0 {
		t.Fatal("no result")
	}
	if out.Duration > out.Default.Duration {
		t.Fatal("adaptive worse than default")
	}
	if tuner.Evaluations() == 0 {
		t.Fatal("evaluations not counted")
	}
	// Explicit plans and brute force are exposed too.
	plan := adaptmr.NewPlan(adaptmr.TwoPhases, adaptmr.MustParsePair("ad"), adaptmr.DefaultPair)
	pr, err := tuner.RunPlan(plan)
	if err != nil {
		t.Fatalf("RunPlan: %v", err)
	}
	if pr.Duration <= 0 {
		t.Fatal("RunPlan")
	}
	bf, err := tuner.BruteForce()
	if err != nil {
		t.Fatalf("BruteForce: %v", err)
	}
	if bf.Duration > out.Duration {
		t.Fatal("brute force worse than heuristic")
	}
}

func TestTunerOptionsFacade(t *testing.T) {
	job := adaptmr.SortBenchmark(96 << 20).Job
	serial, err := adaptmr.NewTuner(quickCluster(), job, adaptmr.WithParallelism(1)).
		WithCandidates([]adaptmr.Pair{adaptmr.DefaultPair, adaptmr.MustParsePair("ad")}).
		Tune()
	if err != nil {
		t.Fatalf("serial Tune: %v", err)
	}
	par, err := adaptmr.NewTuner(quickCluster(), job, adaptmr.WithParallelism(4)).
		WithCandidates([]adaptmr.Pair{adaptmr.DefaultPair, adaptmr.MustParsePair("ad")}).
		Tune()
	if err != nil {
		t.Fatalf("parallel Tune: %v", err)
	}
	if serial.Plan.String() != par.Plan.String() || serial.Duration != par.Duration {
		t.Fatalf("parallelism changed the tuning outcome: %v/%v vs %v/%v",
			serial.Plan, serial.Duration, par.Plan, par.Duration)
	}
	if serial.Evaluations != par.Evaluations {
		t.Fatalf("evaluation counts differ: %d vs %d", serial.Evaluations, par.Evaluations)
	}
}

func TestUniformPlanFacade(t *testing.T) {
	p := adaptmr.UniformPlan(adaptmr.ThreePhases, adaptmr.DefaultPair)
	if p.NumSwitches() != 0 {
		t.Fatal("uniform plan switches")
	}
}

func TestRunExperimentsFacade(t *testing.T) {
	var sb strings.Builder
	if err := adaptmr.RunExperiments(adaptmr.QuickExperiments(), &sb, "table2"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Table II") {
		t.Fatalf("output:\n%s", sb.String())
	}
}

// Degenerate job configs must surface as errors from every facade entry
// point instead of panicking deep in the runtime or simulating nonsense.
func TestValidationFacade(t *testing.T) {
	bad := adaptmr.SortBenchmark(96 << 20).Job
	bad.InputPerVM = 0

	if _, err := adaptmr.Run(quickCluster(), bad, adaptmr.DefaultPair); err == nil {
		t.Fatal("Run accepted a zero-input job")
	} else if !strings.Contains(err.Error(), "adaptmr:") {
		t.Fatalf("Run error not namespaced: %v", err)
	}
	if _, err := adaptmr.NewTuner(quickCluster(), bad).Tune(); err == nil {
		t.Fatal("Tune accepted a zero-input job")
	}
	if _, err := adaptmr.NewTuner(quickCluster(), bad).RunPlan(
		adaptmr.UniformPlan(adaptmr.TwoPhases, adaptmr.DefaultPair)); err == nil {
		t.Fatal("RunPlan accepted a zero-input job")
	}
	if _, _, err := adaptmr.RunFineGrained(quickCluster(), bad, nil); err == nil {
		t.Fatal("RunFineGrained accepted a zero-input job")
	}
	good := adaptmr.SortBenchmark(96 << 20).Job
	if _, err := adaptmr.RunChain(quickCluster(),
		[]adaptmr.JobConfig{good, bad},
		[]adaptmr.Plan{adaptmr.UniformPlan(adaptmr.TwoPhases, adaptmr.DefaultPair),
			adaptmr.UniformPlan(adaptmr.TwoPhases, adaptmr.DefaultPair)}); err == nil {
		t.Fatal("RunChain accepted a zero-input stage")
	}

	noName := good
	noName.Name = ""
	if _, err := adaptmr.Run(quickCluster(), noName, adaptmr.DefaultPair); err == nil {
		t.Fatal("Run accepted a nameless job")
	}
}

// Fleet scenarios are validated the same way: schema typos and
// degenerate topologies error out of the facade before any simulation.
func TestFleetValidationFacade(t *testing.T) {
	if _, err := adaptmr.ParseFleetScenario([]byte(`{"name":"x","celz":2}`)); err == nil {
		t.Fatal("ParseFleetScenario accepted an unknown field")
	}
	bad := adaptmr.SmokeFleetScenario()
	bad.Jobs = nil
	if _, err := adaptmr.RunFleet(bad); err == nil {
		t.Fatal("RunFleet accepted a scenario with no jobs")
	}
	bad = adaptmr.SmokeFleetScenario()
	bad.Pair = "zz"
	if _, err := adaptmr.RunFleet(bad); err == nil {
		t.Fatal("RunFleet accepted an unknown scheduler pair")
	}
}
