package adaptmr_test

import (
	"strings"
	"testing"

	"adaptmr"
)

func quickCluster() adaptmr.ClusterConfig {
	cfg := adaptmr.DefaultClusterConfig()
	cfg.Hosts = 2
	cfg.VMsPerHost = 2
	return cfg
}

func TestPairFacade(t *testing.T) {
	ps := adaptmr.AllPairs()
	if len(ps) != 16 {
		t.Fatalf("pairs %d", len(ps))
	}
	p, err := adaptmr.ParsePair("ad")
	if err != nil || p.VMM != adaptmr.Anticipatory || p.VM != adaptmr.Deadline {
		t.Fatalf("ParsePair: %v %v", p, err)
	}
	if adaptmr.MustParsePair("cc") != adaptmr.DefaultPair {
		t.Fatal("default pair")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustParsePair should panic on junk")
		}
	}()
	adaptmr.MustParsePair("zz")
}

func TestRunJobFacade(t *testing.T) {
	res := adaptmr.RunJob(quickCluster(), adaptmr.SortBenchmark(96<<20).Job, adaptmr.DefaultPair)
	if res.Duration <= 0 || res.NumMaps == 0 {
		t.Fatalf("result %+v", res)
	}
}

func TestBenchmarkFacade(t *testing.T) {
	suite := adaptmr.BenchmarkSuite(64 << 20)
	if len(suite) != 3 {
		t.Fatalf("suite %d", len(suite))
	}
	if adaptmr.WordCountBenchmark(1).Job.Name != "wordcount" ||
		adaptmr.WordCountNoCombinerBenchmark(1).Job.Name != "wordcount-nc" ||
		adaptmr.SortBenchmark(1).Job.Name != "sort" {
		t.Fatal("benchmark names")
	}
}

func TestTunerFacade(t *testing.T) {
	job := adaptmr.SortBenchmark(96 << 20).Job
	tuner := adaptmr.NewTuner(quickCluster(), job).
		WithScheme(adaptmr.TwoPhases).
		WithCandidates([]adaptmr.Pair{
			adaptmr.DefaultPair,
			adaptmr.MustParsePair("ad"),
			adaptmr.MustParsePair("nc"),
		})
	out := tuner.Tune()
	if out.Duration <= 0 {
		t.Fatal("no result")
	}
	if out.Duration > out.Default.Duration {
		t.Fatal("adaptive worse than default")
	}
	if tuner.Evaluations() == 0 {
		t.Fatal("evaluations not counted")
	}
	// Explicit plans and brute force are exposed too.
	plan := adaptmr.NewPlan(adaptmr.TwoPhases, adaptmr.MustParsePair("ad"), adaptmr.DefaultPair)
	if tuner.RunPlan(plan).Duration <= 0 {
		t.Fatal("RunPlan")
	}
	bf := tuner.BruteForce()
	if bf.Duration > out.Duration {
		t.Fatal("brute force worse than heuristic")
	}
}

func TestUniformPlanFacade(t *testing.T) {
	p := adaptmr.UniformPlan(adaptmr.ThreePhases, adaptmr.DefaultPair)
	if p.NumSwitches() != 0 {
		t.Fatal("uniform plan switches")
	}
}

func TestRunExperimentsFacade(t *testing.T) {
	var sb strings.Builder
	if err := adaptmr.RunExperiments(adaptmr.QuickExperiments(), &sb, "table2"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Table II") {
		t.Fatalf("output:\n%s", sb.String())
	}
}
