package adaptmr_test

import (
	"testing"

	"adaptmr"
)

// TestRunWithInvariantChecks runs a full MapReduce job with the runtime
// correctness harness attached to every block queue in the cluster; the
// checked run must succeed and agree with the unchecked run (observation
// must not perturb the simulation).
func TestRunWithInvariantChecks(t *testing.T) {
	job := adaptmr.SortBenchmark(96 << 20).Job
	plain, err := adaptmr.Run(quickCluster(), job, adaptmr.DefaultPair)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	checked, err := adaptmr.Run(quickCluster(), job, adaptmr.DefaultPair,
		adaptmr.WithInvariantChecks())
	if err != nil {
		t.Fatalf("checked Run: %v", err)
	}
	if checked.Duration != plain.Duration || checked.NumMaps != plain.NumMaps {
		t.Fatalf("checker perturbed the run: %+v vs %+v", checked, plain)
	}
}

// TestTunerWithInvariantChecksParallel covers the concurrent use of one
// shared check.Set: parallel evaluation runs several checked clusters at
// once, each recording into the same set. Run under -race in CI.
func TestTunerWithInvariantChecksParallel(t *testing.T) {
	job := adaptmr.SortBenchmark(96 << 20).Job
	out, err := adaptmr.NewTuner(quickCluster(), job,
		adaptmr.WithParallelism(4), adaptmr.WithInvariantChecks()).
		WithCandidates([]adaptmr.Pair{
			adaptmr.DefaultPair,
			adaptmr.MustParsePair("ad"),
			adaptmr.MustParsePair("nc"),
		}).
		Tune()
	if err != nil {
		t.Fatalf("checked parallel Tune: %v", err)
	}
	if out.Duration <= 0 || out.Evaluations == 0 {
		t.Fatalf("tuning produced no work: %+v", out)
	}
}

// TestReportWithInvariantChecks exercises the CheckInvariants report
// option: the instrumented report run (tracer + metrics + sampler + checks
// all attached at once) must pass.
func TestReportWithInvariantChecks(t *testing.T) {
	cfg := quickCluster()
	job := adaptmr.SortBenchmark(96 << 20).Job
	rep, err := adaptmr.RunReport(cfg, job, adaptmr.DefaultPair, adaptmr.ReportOptions{
		Workload:        "sort",
		InputMB:         96,
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatalf("RunReport with checks: %v", err)
	}
	if rep.Bench.MakespanS <= 0 {
		t.Fatalf("empty report: %+v", rep.Bench)
	}
}

// TestCheckSetDirectUse drives the exported CheckSet through a cluster run
// built by hand (the paperbench wiring), asserting the accessors report a
// clean, balanced run.
func TestCheckSetDirectUse(t *testing.T) {
	checks := adaptmr.NewCheckSet()
	cfg := quickCluster()
	cfg.Check = checks
	if _, err := adaptmr.Run(cfg, adaptmr.SortBenchmark(96<<20).Job, adaptmr.DefaultPair); err != nil {
		t.Fatalf("Run: %v", err)
	}
	checks.Finalize()
	if err := checks.Err(); err != nil {
		t.Fatalf("violations: %v", err)
	}
	if checks.Total() != 0 {
		t.Fatalf("%d violations recorded", checks.Total())
	}
	if len(checks.Violations()) != 0 {
		t.Fatal("violation list not empty")
	}
}

// TestPlanWithInvariantChecks runs an explicit switching plan under the
// checker: live elevator switches (drain + reinit stall mid-job) are the
// paths most likely to strand or double-complete requests.
func TestPlanWithInvariantChecks(t *testing.T) {
	job := adaptmr.SortBenchmark(96 << 20).Job
	tuner := adaptmr.NewTuner(quickCluster(), job, adaptmr.WithInvariantChecks())
	plan := adaptmr.NewPlan(adaptmr.TwoPhases, adaptmr.MustParsePair("ad"), adaptmr.DefaultPair)
	pr, err := tuner.RunPlan(plan)
	if err != nil {
		t.Fatalf("checked RunPlan: %v", err)
	}
	if pr.Duration <= 0 {
		t.Fatal("RunPlan produced no result")
	}
}
