package adaptmr

import (
	"fmt"
	"io"

	"adaptmr/internal/analyze"
	"adaptmr/internal/cluster"
	"adaptmr/internal/control"
	"adaptmr/internal/fleet"
	"adaptmr/internal/obs"
)

// ---------------------------------------------------------------------------
// Fleet-scale multi-job simulation
// ---------------------------------------------------------------------------

// FleetScenario describes a fleet-scale run: cells of hosts, a multi-job
// workload with arrival model, and the JobTracker scheduling policy. Load
// one from JSON with LoadFleetScenario/ParseFleetScenario (the schema is
// documented in API.md) or build it in code.
type FleetScenario = fleet.Scenario

// FleetJobSpec is one job template in a scenario (benchmark, size, count,
// weight, priority, queue, optional pinned cell or trace arrivals).
type FleetJobSpec = fleet.JobSpec

// FleetArrivalSpec selects the scenario's arrival model: "immediate",
// "poisson" (seeded, deterministic, invariant to adding other jobs) or
// "trace" (explicit per-instance arrival times).
type FleetArrivalSpec = fleet.ArrivalSpec

// FleetQueueSpec names a capacity-scheduler queue and its share.
type FleetQueueSpec = fleet.QueueSpec

// FleetResult is a completed fleet run: per-job outcomes in (cell,
// admission) order plus the aggregate summary.
type FleetResult = fleet.Result

// FleetJobOutcome is one job's fleet-level lifecycle record.
type FleetJobOutcome = fleet.JobOutcome

// FleetAggregate is the fleet-wide summary (makespan, throughput,
// duration/wait quantiles, concurrency, phase mix).
type FleetAggregate = fleet.Aggregate

// JobTracker scheduling policies accepted in FleetScenario.Policy.
const (
	FleetFIFO     = fleet.PolicyFIFO
	FleetFair     = fleet.PolicyFair
	FleetCapacity = fleet.PolicyCapacity
)

// LoadFleetScenario reads and parses a scenario JSON file.
func LoadFleetScenario(path string) (FleetScenario, error) { return fleet.Load(path) }

// ParseFleetScenario parses scenario JSON (unknown fields rejected).
func ParseFleetScenario(data []byte) (FleetScenario, error) { return fleet.Parse(data) }

// SmokeFleetScenario returns the built-in small multi-job scenario used
// by the CI fleet gate: 2 cells × 2 hosts × 2 VMs, fair-share policy,
// Poisson arrivals over all three paper benchmarks.
func SmokeFleetScenario() FleetScenario { return fleet.SmokeScenario() }

// RunFleet executes a fleet scenario: per-cell JobTracker admission and
// slot scheduling over concurrent jobs, with cells simulated in parallel
// (WithParallelism; <= 1 runs serially) under a conservative time-window
// barrier. Output — results, traces, metrics, journeys, decisions — is
// byte-identical at every parallelism setting. WithInvariantChecks
// attaches the runtime correctness harness to every block queue of every
// cell; WithPerfStats fills FleetResult.WallS/EventsPerSec.
func RunFleet(s FleetScenario, opts ...Option) (*FleetResult, error) {
	o := buildOptions(opts)
	var sink obs.Sink
	if o.tracer != nil {
		sink.Trace = o.tracer
	}
	if o.metrics != nil {
		sink.Metrics = o.metrics
	}
	if o.journeys != nil {
		sink.Journeys = o.journeys
	}
	if o.decisions != nil {
		sink.Decisions = o.decisions
	}
	res, err := fleet.Run(s, fleet.Options{
		Parallelism: o.parallelism,
		Obs:         sink,
		Check:       o.check,
		Perf:        o.perf,
		Context:     o.ctx,
	})
	if err != nil {
		return nil, fmt.Errorf("adaptmr: %w", err)
	}
	if err := o.verify(nil); err != nil {
		return nil, err
	}
	return res, nil
}

// FleetOnlineCellStats is one cell's controller activity in a
// RunFleetOnline execution.
type FleetOnlineCellStats struct {
	Cell      int              `json:"cell"`
	StartPair string           `json:"start_pair"`
	FinalPair string           `json:"final_pair"`
	Switches  int              `json:"switches"`
	Windows   int              `json:"windows"`
	Decisions []OnlineDecision `json:"decisions"`
}

// FleetOnlineStats aggregates the per-cell online controllers of a
// RunFleetOnline execution.
type FleetOnlineStats struct {
	Cells    []FleetOnlineCellStats `json:"cells"`
	Switches int                    `json:"switches"`
	Windows  int                    `json:"windows"`
}

// RunFleetOnline is RunFleet with an independent online adaptive
// controller attached to every cell: each controller samples its cell's
// live Dom0 I/O mix and switches the cell's elevator pair in-run through
// the hysteresis gates, with no knowledge of job phase boundaries — the
// regime it sees is whatever the overlapping jobs of that cell compose
// on the shared spindles. WithOnlineControl selects the policy (the
// scenario's Pair stays the boot pair; the policy's StartPair is
// ignored). Deterministic and byte-identical at every WithParallelism
// setting: controllers are engine-confined per cell, and stats report in
// cell order.
func RunFleetOnline(s FleetScenario, opts ...Option) (*FleetResult, *FleetOnlineStats, error) {
	o := buildOptions(opts)
	pol := DefaultOnlinePolicy()
	if o.online != nil {
		pol = *o.online
	}
	var sink obs.Sink
	if o.tracer != nil {
		sink.Trace = o.tracer
	}
	if o.metrics != nil {
		sink.Metrics = o.metrics
	}
	if o.journeys != nil {
		sink.Journeys = o.journeys
	}
	if o.decisions != nil {
		sink.Decisions = o.decisions
	}
	type cellCtl struct {
		ctrl  *control.Controller
		start string
	}
	var ctls []cellCtl // cells are constructed serially, in index order
	res, err := fleet.Run(s, fleet.Options{
		Parallelism: o.parallelism,
		Obs:         sink,
		Check:       o.check,
		Perf:        o.perf,
		Context:     o.ctx,
		OnCell: func(cell int, cl *cluster.Cluster) {
			smp := analyze.NewSampler()
			smp.AttachCluster(cl)
			ctrl := control.New(pol)
			ctrl.Attach(cl, smp)
			ctls = append(ctls, cellCtl{ctrl: ctrl, start: cl.Pair().Code()})
		},
	})
	if err != nil {
		return nil, nil, fmt.Errorf("adaptmr: %w", err)
	}
	if err := o.verify(nil); err != nil {
		return nil, nil, err
	}
	stats := &FleetOnlineStats{}
	for i, c := range ctls {
		stats.Cells = append(stats.Cells, FleetOnlineCellStats{
			Cell:      i,
			StartPair: c.start,
			FinalPair: c.ctrl.InstalledPair().Code(),
			Switches:  c.ctrl.Switches(),
			Windows:   c.ctrl.Windows(),
			Decisions: c.ctrl.Decisions(),
		})
		stats.Switches += c.ctrl.Switches()
		stats.Windows += c.ctrl.Windows()
	}
	return res, stats, nil
}

// FleetBench condenses a fleet result into the gate summary compared by
// CompareBenches (workload label "fleet:<scenario>").
func FleetBench(res *FleetResult) Bench { return analyze.BenchFromFleet(res) }

// WriteFleetReport renders a fleet result as a markdown report (per-job
// table plus aggregates).
func WriteFleetReport(w io.Writer, res *FleetResult) error {
	return analyze.WriteFleetMarkdown(w, res)
}
