package adaptmr

import (
	"fmt"
	"io"

	"adaptmr/internal/analyze"
	"adaptmr/internal/fleet"
	"adaptmr/internal/obs"
)

// ---------------------------------------------------------------------------
// Fleet-scale multi-job simulation
// ---------------------------------------------------------------------------

// FleetScenario describes a fleet-scale run: cells of hosts, a multi-job
// workload with arrival model, and the JobTracker scheduling policy. Load
// one from JSON with LoadFleetScenario/ParseFleetScenario (the schema is
// documented in API.md) or build it in code.
type FleetScenario = fleet.Scenario

// FleetJobSpec is one job template in a scenario (benchmark, size, count,
// weight, priority, queue, optional pinned cell or trace arrivals).
type FleetJobSpec = fleet.JobSpec

// FleetArrivalSpec selects the scenario's arrival model: "immediate",
// "poisson" (seeded, deterministic, invariant to adding other jobs) or
// "trace" (explicit per-instance arrival times).
type FleetArrivalSpec = fleet.ArrivalSpec

// FleetQueueSpec names a capacity-scheduler queue and its share.
type FleetQueueSpec = fleet.QueueSpec

// FleetResult is a completed fleet run: per-job outcomes in (cell,
// admission) order plus the aggregate summary.
type FleetResult = fleet.Result

// FleetJobOutcome is one job's fleet-level lifecycle record.
type FleetJobOutcome = fleet.JobOutcome

// FleetAggregate is the fleet-wide summary (makespan, throughput,
// duration/wait quantiles, concurrency, phase mix).
type FleetAggregate = fleet.Aggregate

// JobTracker scheduling policies accepted in FleetScenario.Policy.
const (
	FleetFIFO     = fleet.PolicyFIFO
	FleetFair     = fleet.PolicyFair
	FleetCapacity = fleet.PolicyCapacity
)

// LoadFleetScenario reads and parses a scenario JSON file.
func LoadFleetScenario(path string) (FleetScenario, error) { return fleet.Load(path) }

// ParseFleetScenario parses scenario JSON (unknown fields rejected).
func ParseFleetScenario(data []byte) (FleetScenario, error) { return fleet.Parse(data) }

// SmokeFleetScenario returns the built-in small multi-job scenario used
// by the CI fleet gate: 2 cells × 2 hosts × 2 VMs, fair-share policy,
// Poisson arrivals over all three paper benchmarks.
func SmokeFleetScenario() FleetScenario { return fleet.SmokeScenario() }

// RunFleet executes a fleet scenario: per-cell JobTracker admission and
// slot scheduling over concurrent jobs, with cells simulated in parallel
// (WithParallelism; <= 1 runs serially) under a conservative time-window
// barrier. Output — results, traces, metrics, journeys, decisions — is
// byte-identical at every parallelism setting. WithInvariantChecks
// attaches the runtime correctness harness to every block queue of every
// cell; WithPerfStats fills FleetResult.WallS/EventsPerSec.
func RunFleet(s FleetScenario, opts ...Option) (*FleetResult, error) {
	o := buildOptions(opts)
	var sink obs.Sink
	if o.tracer != nil {
		sink.Trace = o.tracer
	}
	if o.metrics != nil {
		sink.Metrics = o.metrics
	}
	if o.journeys != nil {
		sink.Journeys = o.journeys
	}
	if o.decisions != nil {
		sink.Decisions = o.decisions
	}
	res, err := fleet.Run(s, fleet.Options{
		Parallelism: o.parallelism,
		Obs:         sink,
		Check:       o.check,
		Perf:        o.perf,
		Context:     o.ctx,
	})
	if err != nil {
		return nil, fmt.Errorf("adaptmr: %w", err)
	}
	if err := o.verify(nil); err != nil {
		return nil, err
	}
	return res, nil
}

// FleetBench condenses a fleet result into the gate summary compared by
// CompareBenches (workload label "fleet:<scenario>").
func FleetBench(res *FleetResult) Bench { return analyze.BenchFromFleet(res) }

// WriteFleetReport renders a fleet result as a markdown report (per-job
// table plus aggregates).
func WriteFleetReport(w io.Writer, res *FleetResult) error {
	return analyze.WriteFleetMarkdown(w, res)
}
