// Adaptive sort: runs the paper's full meta-scheduler pipeline on the sort
// benchmark — profile all 16 pairs per phase, search with Algorithm 1, and
// compare the adaptive plan against the default and best static pairs.
// Optionally cross-checks the heuristic against brute force.
//
//	go run ./examples/adaptive_sort [-brute] [-input 512] [-phases 2]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"adaptmr"
)

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "adaptive_sort:", err)
		os.Exit(1)
	}
}

func main() {
	brute := flag.Bool("brute", false, "also run the 16^P brute-force search")
	inputMB := flag.Int64("input", 512, "MB of input per datanode VM")
	phases := flag.Int("phases", 2, "phase scheme (2 or 3)")
	flag.Parse()

	scheme := adaptmr.TwoPhases
	if *phases == 3 {
		scheme = adaptmr.ThreePhases
	}

	cfg := adaptmr.DefaultClusterConfig()
	job := adaptmr.SortBenchmark(*inputMB << 20).Job
	// WithParallelism(0) fans the tuner's independent evaluations across
	// GOMAXPROCS workers; the output is byte-identical to a serial run.
	tuner := adaptmr.NewTuner(cfg, job, adaptmr.WithParallelism(0)).WithScheme(scheme)

	fmt.Printf("tuning sort (%d MB/node) on 4x4 with %v...\n\n", *inputMB, scheme)
	out, err := tuner.Tune()
	check(err)

	// Show the profiling table the heuristic ranked (the paper's Fig 6).
	fmt.Println("per-phase profile (seconds):")
	profs := append([]adaptmr.TuningResult{}, out)[0].Profiles
	sort.Slice(profs, func(i, j int) bool { return profs[i].Total < profs[j].Total })
	fmt.Printf("  %-6s", "pair")
	for i := 0; i < scheme.Phases(); i++ {
		fmt.Printf("  phase%d", i+1)
	}
	fmt.Printf("   total\n")
	for _, p := range profs {
		fmt.Printf("  %-6s", p.Pair.Code())
		for i := 0; i < scheme.Phases(); i++ {
			fmt.Printf("  %6.1f", p.PhaseDuration(scheme, i).Seconds())
		}
		fmt.Printf("  %6.1f\n", p.Total.Seconds())
	}

	fmt.Println("\nheuristic decisions:")
	for _, d := range out.Decisions {
		fmt.Printf("  phase %d: tried %d of %d ranked candidates -> %s",
			d.Phase+1, d.Tried, len(d.Ranked), d.Chosen)
		if d.NoSwitch {
			fmt.Printf(" (no switch command)")
		}
		fmt.Println()
	}

	fmt.Printf("\ndefault    %-44s %7.1f s\n", out.Default.Plan, out.Default.Duration.Seconds())
	fmt.Printf("best-1     %-44s %7.1f s\n", out.BestSingle.Plan, out.BestSingle.Duration.Seconds())
	fmt.Printf("adaptive   %-44s %7.1f s\n", out.Plan, out.Duration.Seconds())
	fmt.Printf("improvement: %.1f%% vs default, %.1f%% vs best single (%d job executions)\n",
		100*out.ImprovementOverDefault(), 100*out.ImprovementOverBestSingle(), out.Evaluations)

	if *brute {
		fmt.Println("\nbrute force over every plan (memoised, pooled, may take minutes)...")
		bf, err := tuner.BruteForce()
		check(err)
		fmt.Printf("optimum    %-44s %7.1f s\n", bf.Plan, bf.Duration.Seconds())
		gap := 100 * (out.Duration.Seconds() - bf.Duration.Seconds()) / bf.Duration.Seconds()
		fmt.Printf("heuristic is within %.1f%% of the optimum\n", gap)
	}
}
