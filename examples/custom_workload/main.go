// Custom workload: model your own MapReduce application by describing its
// data-flow ratios and CPU costs, classify it the way the paper classifies
// benchmarks (light / moderate / heavy disk operations), and let the
// meta-scheduler pick a phase plan for it.
//
// The example models a log-analysis job: a filtering map that keeps ~30% of
// its input (moderate CPU), and an aggregation reduce that emits compact
// summaries.
//
//	go run ./examples/custom_workload
package main

import (
	"fmt"
	"os"

	"adaptmr"
)

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "custom_workload:", err)
		os.Exit(1)
	}
}

func main() {
	job := adaptmr.DefaultJobConfig()
	job.Name = "log-analysis"
	job.InputPerVM = 512 << 20
	job.MapOutputRatio = 0.30    // the filter keeps ~30% of events
	job.ReduceOutputRatio = 0.05 // aggregated counters are small
	job.MapCPUSecPerMB = 0.08    // regex/parse cost per MB of log
	job.SortCPUSecPerMB = 0.008
	job.ReduceCPUSecPerMB = 0.02
	job.ReducersPerVM = 1 // few, large aggregations

	cfg := adaptmr.DefaultClusterConfig()

	fmt.Println("log-analysis on 4x4, 512 MB per node")
	fmt.Println()

	// First: how sensitive is this job to the static pair choice?
	fmt.Println("static pairs:")
	type row struct {
		pair adaptmr.Pair
		s    float64
	}
	var rows []row
	for _, p := range []string{"cc", "ad", "ac", "dd", "nc"} {
		pair, err := adaptmr.ParsePair(p)
		check(err)
		res, err := adaptmr.Run(cfg, job, pair)
		check(err)
		rows = append(rows, row{pair, res.Duration.Seconds()})
		fmt.Printf("  %-26s %6.1f s\n", pair, res.Duration.Seconds())
	}

	// Then: the adaptive plan.
	out, err := adaptmr.NewTuner(cfg, job).Tune()
	check(err)
	fmt.Printf("\nadaptive %s: %.1f s (%.1f%% vs default, %.1f%% vs best single)\n",
		out.Plan, out.Duration.Seconds(),
		100*out.ImprovementOverDefault(), 100*out.ImprovementOverBestSingle())

	// Phase structure explains the choice.
	def, err := adaptmr.Run(cfg, job, adaptmr.DefaultPair)
	check(err)
	fmt.Printf("\nphase structure under the default pair: map %.1fs | shuffle tail %.1fs | reduce %.1fs\n",
		def.MapsDoneAt.Sub(def.Start).Seconds(),
		def.ShuffleDoneAt.Sub(def.MapsDoneAt).Seconds(),
		def.Done.Sub(def.ShuffleDoneAt).Seconds())
	fmt.Println("A filter-heavy job is map-dominated: most of the gain comes from the")
	fmt.Println("phase-1 pair; the meta-scheduler only switches if the reduce tail pays")
	fmt.Println("for the (non-commutative) switch cost.")
}
