// Reactive controller: the paper's future-work idea made concrete — no
// job knowledge at all. Each host watches its own read/write mix and
// switches the scheduler pair when the regime changes, rate-limited
// because every switch drains the queues.
//
// Compare three ways of running the same sort job:
//
//	static default   (CFQ, CFQ) for the whole job
//	meta-scheduler   profile + Algorithm 1 (needs phase boundaries)
//	reactive         per-host regime detection (needs nothing)
//
//	go run ./examples/reactive_controller
package main

import (
	"fmt"
	"os"

	"adaptmr"
)

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "reactive_controller:", err)
		os.Exit(1)
	}
}

func main() {
	cfg := adaptmr.DefaultClusterConfig()
	job := adaptmr.SortBenchmark(512 << 20).Job

	static, err := adaptmr.Run(cfg, job, adaptmr.DefaultPair)
	check(err)
	fmt.Printf("static default   %7.1f s\n", static.Duration.Seconds())

	tuned, err := adaptmr.NewTuner(cfg, job).Tune()
	check(err)
	fmt.Printf("meta-scheduler   %7.1f s  %s (offline: %d profiling/search executions)\n",
		tuned.Duration.Seconds(), tuned.Plan, tuned.Evaluations)

	reactive, switches, err := adaptmr.RunFineGrained(cfg, job, nil)
	check(err)
	fmt.Printf("reactive         %7.1f s  (%d online switch commands, zero offline runs)\n",
		reactive.Duration.Seconds(), switches)

	fmt.Println("\nThe reactive controller trades a little of the meta-scheduler's gain")
	fmt.Println("for zero profiling cost and no dependence on job phase boundaries —")
	fmt.Println("it keeps working when the cluster runs many jobs at once.")
}
