// Switch-cost map: measure the paper's Fig 5 experiment — the cost of
// switching between scheduler-pair states mid-workload, with the parallel
// dd probe — for a chosen subset of states, and show the asymmetry.
//
//	go run ./examples/switch_cost_map [-states cc,ad,dd,nn] [-ddmb 300]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"adaptmr/internal/guestio"
	"adaptmr/internal/iosched"
	"adaptmr/internal/workloads"
	"adaptmr/internal/xen"
)

func main() {
	states := flag.String("states", "cc,ad,dd,nn", "comma-separated pair codes")
	ddmb := flag.Int64("ddmb", 300, "dd MB per VM")
	vms := flag.Int("vms", 4, "VMs on the probe host")
	flag.Parse()

	var pairs []iosched.Pair
	for _, c := range strings.Split(*states, ",") {
		p, err := iosched.ParsePair(strings.TrimSpace(c))
		if err != nil {
			fmt.Fprintln(os.Stderr, "switch_cost_map:", err)
			os.Exit(1)
		}
		pairs = append(pairs, p)
	}

	cfg := workloads.DefaultDDConfig()
	cfg.BytesPerVM = *ddmb << 20
	newHost := func() *workloads.MicroHost {
		return workloads.NewMicroHost(*vms, xen.DefaultHostConfig(), guestio.DefaultConfig(), 1)
	}

	fmt.Printf("switch cost [s], dd %d MB x %d VMs (rows: from, cols: to)\n\n      ", *ddmb, *vms)
	for _, p := range pairs {
		fmt.Printf("%8s", p.Code())
	}
	fmt.Println()
	for _, from := range pairs {
		fmt.Printf("%6s", from.Code())
		for _, to := range pairs {
			cost := workloads.SwitchCost(newHost, cfg, from, to)
			fmt.Printf("%8.2f", cost.Seconds())
		}
		fmt.Println()
	}
	fmt.Println("\nNote the diagonal: re-asserting the SAME pair still drains and")
	fmt.Println("re-initialises every queue, so it is not free — which is why the")
	fmt.Println("meta-scheduler suppresses the switch command when a phase keeps its")
	fmt.Println("predecessor's pair (the paper's 0 entries).")
}
