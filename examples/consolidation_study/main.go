// Consolidation study: how VM density on a physical host changes both raw
// interference (the paper's Fig 1 sysbench observation) and the payoff of
// adaptive scheduler tuning (Fig 7b).
//
//	go run ./examples/consolidation_study
package main

import (
	"fmt"
	"os"

	"adaptmr"
)

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "consolidation_study:", err)
		os.Exit(1)
	}
}

func main() {
	fmt.Println("Part 1: raw disk interference (sysbench-like concurrent writers)")
	fmt.Println("  elapsed time of the same per-VM work as VM density grows:")
	base := 0.0
	for _, vms := range []int{1, 2, 3, 4} {
		cfg := adaptmr.DefaultClusterConfig()
		cfg.Hosts = 1
		cfg.VMsPerHost = vms
		// A write-heavy job stands in for the sysbench probe at the
		// cluster API level.
		job := adaptmr.SortBenchmark(128 << 20).Job
		res, err := adaptmr.Run(cfg, job, adaptmr.DefaultPair)
		check(err)
		if vms == 1 {
			base = res.Duration.Seconds()
		}
		fmt.Printf("  %d VM(s): %6.1f s  (x%.1f vs 1 VM)\n",
			vms, res.Duration.Seconds(), res.Duration.Seconds()/base)
	}

	fmt.Println("\nPart 2: adaptive tuning payoff vs consolidation (sort, 4 hosts)")
	for _, vms := range []int{2, 4, 6} {
		cfg := adaptmr.DefaultClusterConfig()
		cfg.VMsPerHost = vms
		job := adaptmr.SortBenchmark(512 << 20).Job
		out, err := adaptmr.NewTuner(cfg, job).Tune()
		check(err)
		fmt.Printf("  %d VMs/host: default %6.1fs  best-1 %6.1fs  adaptive %6.1fs  (%.1f%% / %.1f%%)  %s\n",
			vms, out.Default.Duration.Seconds(), out.BestSingle.Duration.Seconds(),
			out.Duration.Seconds(),
			100*out.ImprovementOverDefault(), 100*out.ImprovementOverBestSingle(), out.Plan)
	}
	fmt.Println("\nThe denser the host, the more the disk pair scheduler matters —")
	fmt.Println("and the more a per-phase adaptive choice recovers.")
}
