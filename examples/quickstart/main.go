// Quickstart: run the paper's sort benchmark on the simulated 4×4
// virtualized Hadoop testbed under the default (CFQ, CFQ) scheduler pair,
// then under the paper's best static pair, and print the comparison.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"adaptmr"
)

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func main() {
	cfg := adaptmr.DefaultClusterConfig() // 4 hosts × 4 VMs, 1 SATA disk each
	job := adaptmr.SortBenchmark(512 << 20).Job

	fmt.Println("sort, 512 MB per datanode, 4 hosts x 4 VMs")
	fmt.Println()

	def, err := adaptmr.Run(cfg, job, adaptmr.DefaultPair)
	check(err)
	fmt.Printf("%-26s %6.1f s  (map %5.1f | shuffle tail %4.1f | reduce %5.1f)\n",
		adaptmr.DefaultPair, def.Duration.Seconds(),
		def.MapsDoneAt.Sub(def.Start).Seconds(),
		def.ShuffleDoneAt.Sub(def.MapsDoneAt).Seconds(),
		def.Done.Sub(def.ShuffleDoneAt).Seconds())

	best, err := adaptmr.ParsePair("(anticipatory, deadline)")
	check(err)
	res, err := adaptmr.Run(cfg, job, best)
	check(err)
	fmt.Printf("%-26s %6.1f s  (map %5.1f | shuffle tail %4.1f | reduce %5.1f)\n",
		best, res.Duration.Seconds(),
		res.MapsDoneAt.Sub(res.Start).Seconds(),
		res.ShuffleDoneAt.Sub(res.MapsDoneAt).Seconds(),
		res.Done.Sub(res.ShuffleDoneAt).Seconds())

	gain := 100 * (def.Duration.Seconds() - res.Duration.Seconds()) / def.Duration.Seconds()
	fmt.Printf("\n(Anticipatory, Deadline) beats the default by %.1f%% — the paper's\n", gain)
	fmt.Println("Table I effect. Run examples/adaptive_sort to see the meta-scheduler")
	fmt.Println("beat the best static pair by switching pairs mid-job.")
}
