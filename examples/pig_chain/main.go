// Pig chain: tune a chain of MapReduce jobs (what a Pig script compiles
// to) — the scenario the paper uses to motivate plans with more than two
// phases. Each stage gets its own two-phase plan; switch commands between
// stages are suppressed when the pair carries over.
//
// The modelled script: extract (projection, output ≈ 40% of input) →
// join-like reshuffle (identity volumes) → aggregate (tiny output).
//
//	go run ./examples/pig_chain
package main

import (
	"fmt"
	"os"

	"adaptmr"
)

func main() {
	extract := adaptmr.DefaultJobConfig()
	extract.Name = "extract"
	extract.InputPerVM = 512 << 20
	extract.MapOutputRatio = 0.4
	extract.ReduceOutputRatio = 1.0
	extract.MapCPUSecPerMB = 0.05

	join := adaptmr.DefaultJobConfig()
	join.Name = "reshuffle"
	join.MapOutputRatio = 1.0
	join.ReduceOutputRatio = 1.0
	join.MapCPUSecPerMB = 0.02

	aggregate := adaptmr.DefaultJobConfig()
	aggregate.Name = "aggregate"
	aggregate.MapOutputRatio = 0.2
	aggregate.ReduceOutputRatio = 0.05
	aggregate.MapCPUSecPerMB = 0.06

	cfg := adaptmr.DefaultClusterConfig()
	stages := []adaptmr.JobConfig{extract, join, aggregate}

	fmt.Println("tuning a 3-stage chain on 4x4 (each stage: 2-phase heuristic)...")
	out, err := adaptmr.TuneChain(cfg, stages)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pig_chain:", err)
		os.Exit(1)
	}

	fmt.Println("\nper-stage plans:")
	for i, p := range out.Plans {
		fmt.Printf("  %-10s %s\n", stages[i].Name, p)
	}
	fmt.Println("\nchained execution:")
	for i, st := range out.Tuned.Stages {
		fmt.Printf("  %-10s %7.1f s (maps %d, reduces %d)\n",
			stages[i].Name, st.Result.Duration.Seconds(), st.Result.NumMaps, st.Result.NumReduces)
	}
	fmt.Printf("\ntuned chain  %7.1f s\n", out.Tuned.Duration.Seconds())
	fmt.Printf("default      %7.1f s\n", out.Default.Duration.Seconds())
	fmt.Printf("improvement  %6.1f%%  (%d tuning executions)\n",
		100*out.ImprovementOverDefault(), out.Evaluations)
}
