// Service client: tuning as a service. Boots an in-process adaptd server
// on an ephemeral port (or talks to an already-running daemon via
// -addr), submits a tuning request over HTTP, and prints the chosen
// per-phase plan — the same answer a local adaptmr.NewTuner(...).Tune()
// produces, byte for byte.
//
//	go run ./examples/service_client [-input 128] [-hosts 2] [-vms 2]
//	go run ./examples/service_client -addr localhost:7070   # external adaptd
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"

	"adaptmr/internal/server"
)

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "service_client:", err)
		os.Exit(1)
	}
}

func main() {
	addr := flag.String("addr", "", "talk to a running adaptd at this host:port (empty = boot in-process)")
	hosts := flag.Int("hosts", 2, "physical nodes")
	vms := flag.Int("vms", 2, "VMs per node")
	inputMB := flag.Int64("input", 128, "MB of input per datanode VM")
	bench := flag.String("bench", "sort", "workload: sort, wordcount, wordcount-nc")
	flag.Parse()

	base := "http://" + *addr
	if *addr == "" {
		// No daemon given: run the service in-process, exactly as
		// cmd/adaptd would.
		srv, err := server.New(server.Config{Workers: 2})
		check(err)
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		base = ts.URL
		fmt.Printf("booted in-process adaptd at %s\n", base)
	}

	req := map[string]any{
		"cluster": map[string]any{"hosts": *hosts, "vms_per_host": *vms},
		"job":     map[string]any{"bench": *bench, "input_mb": *inputMB},
	}
	body, err := json.Marshal(req)
	check(err)

	fmt.Printf("POST %s/v1/tune %s\n", base, body)
	resp, err := http.Post(base+"/v1/tune", "application/json", bytes.NewReader(body))
	check(err)
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	check(err)
	if resp.StatusCode != http.StatusOK {
		check(fmt.Errorf("server answered %s: %s", resp.Status, payload))
	}

	var out struct {
		Plan struct {
			Display  string `json:"display"`
			Switches int    `json:"switches"`
		} `json:"plan"`
		PhasePlan []struct {
			Phase  int    `json:"phase"`
			Pair   string `json:"pair"`
			Switch bool   `json:"switch"`
		} `json:"phase_plan"`
		DurationS                 float64 `json:"duration_s"`
		ImprovementOverDefaultPct float64 `json:"improvement_over_default_pct"`
		Evaluations               int     `json:"evaluations"`
	}
	check(json.Unmarshal(payload, &out))

	fmt.Printf("\nchosen plan: %s  (%d switch commands, %d evaluations)\n",
		out.Plan.Display, out.Plan.Switches, out.Evaluations)
	for _, ph := range out.PhasePlan {
		marker := " "
		if ph.Switch {
			marker = "*"
		}
		fmt.Printf("  phase %d: %s %s\n", ph.Phase, ph.Pair, marker)
	}
	fmt.Printf("job time %.2f s, %.1f%% over the stock default\n",
		out.DurationS, out.ImprovementOverDefaultPct)
}
