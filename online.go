package adaptmr

import (
	"fmt"

	"adaptmr/internal/analyze"
	"adaptmr/internal/cluster"
	"adaptmr/internal/control"
	"adaptmr/internal/core"
	"adaptmr/internal/obs/perfstat"
	"adaptmr/internal/sim"
)

// OnlinePolicy parameterises the online adaptive controller: sampling
// window, regime thresholds, hysteresis (stability, dwell, cost budget)
// and the regime→pair mapping. Zero fields default to
// DefaultOnlinePolicy's values, so callers override only the knobs they
// care about.
type OnlinePolicy = control.Policy

// OnlineDecision is one controller evaluation where the classifier
// preferred a pair that was not installed — issued, or held with the
// hysteresis gate that held it, plus the window features it classified.
type OnlineDecision = control.Decision

// WindowStats are one sampling window's classified I/O features
// (read/write split, sync share, queue depth, seek distance).
type WindowStats = analyze.WindowStats

// DefaultOnlinePolicy returns the controller policy sized for
// paper-scale MapReduce phases: half-second windows, 1.5 s of regime
// agreement before a switch, ten-second dwell, anticipation in Dom0 for
// sync-read regimes and CFQ for write-heavy regimes.
func DefaultOnlinePolicy() OnlinePolicy { return control.DefaultPolicy() }

// SmokeOnlinePolicy returns DefaultOnlinePolicy rescaled for the CI
// smoke testbed (2×2 hosts, tens-of-MB inputs, seconds-long phases):
// 250 ms windows, two-window stability, one-second dwell, and a cost
// budget that admits the ~88 ms Fig-5 reinit stall at that dwell. The
// paper-scale default would never accumulate a streak inside a
// seconds-long job.
func SmokeOnlinePolicy() OnlinePolicy {
	p := control.DefaultPolicy()
	p.Window = 250 * sim.Millisecond
	p.MinDwell = sim.Second
	p.StableWindows = 2
	p.CostBudget = 0.1
	return p
}

// WithOnlineControl overrides the controller policy for RunOnline (and
// the per-cell controllers of RunFleetOnline). Omitting the option runs
// DefaultOnlinePolicy.
func WithOnlineControl(p OnlinePolicy) Option {
	return func(o *options) { o.online = &p }
}

// OnlineResult is one job executed under the online controller.
type OnlineResult struct {
	// Job is the executed job's result (phases, volumes, metrics).
	Job JobResult `json:"job"`
	// StartPair is the pair installed at boot; FinalPair is what the last
	// issued switch left installed (equal when the controller never
	// switched).
	StartPair Pair `json:"-"`
	FinalPair Pair `json:"-"`
	// StartPairCode / FinalPairCode are their two-letter codes, for the
	// JSON view.
	StartPairCode string `json:"start_pair"`
	FinalPairCode string `json:"final_pair"`
	// Switches counts issued switch commands; Windows counts evaluated
	// sampling windows.
	Switches int `json:"switches"`
	Windows  int `json:"windows"`
	// Decisions is the full decision log: every window where the
	// classifier wanted a different pair, issued or held.
	Decisions []OnlineDecision `json:"decisions"`
	// SwitchStall is the total simulated time block queues spent stalled
	// in elevator drains and re-inits caused by the controller's commands.
	SwitchStall sim.Duration `json:"switch_stall_ns"`
	// SimEvents is the engine's event count for the run.
	SimEvents uint64 `json:"sim_events"`
}

// RunOnline executes one job under the online adaptive controller: the
// cluster boots with the policy's start pair, and the controller samples
// the live Dom0 I/O mix every policy window, classifies the regime, and
// switches the (VMM, VM) elevator pair in-run through the hysteresis
// gates — no profiling runs, no prior knowledge of phase boundaries.
//
// Options: WithOnlineControl selects the policy; WithTracer, WithMetrics,
// WithJourney, WithDecisionLog, WithInvariantChecks, WithPerfStats,
// WithEngineProfile, WithRequestPool and WithContext behave as on Run.
// Output is deterministic and byte-identical at every WithParallelism
// setting.
func RunOnline(cfg ClusterConfig, job JobConfig, opts ...Option) (OnlineResult, error) {
	if err := job.Validate(); err != nil {
		return OnlineResult{}, fmt.Errorf("adaptmr: %w", err)
	}
	o := buildOptions(opts)
	cfg = o.apply(cfg)

	pol := DefaultOnlinePolicy()
	if o.online != nil {
		pol = *o.online
	}

	// A fresh runner per call: the controller mutates the execution, so
	// memoisation or the on-disk evaluation cache must never answer for
	// it. The runner still provides the ordered observation fold, context
	// checking and perf probing the other entry points share.
	r := core.NewRunner(cfg, job)
	r.Parallelism = o.parallelism
	r.Context = o.ctx
	r.CollectPerf = o.perf

	var ctrl *control.Controller
	var eng *sim.Engine
	r.OnEvaluation = func(_ core.Plan, cl *cluster.Cluster) {
		smp := analyze.NewSampler()
		smp.AttachCluster(cl)
		ctrl = control.New(pol)
		ctrl.Attach(cl, smp)
		eng = cl.Eng
	}

	// The plan is uniform: the controller is the only thing that switches.
	start := control.New(pol).Policy().StartPair
	res, err := r.Run(core.Uniform(core.TwoPhases, start))
	if err != nil {
		return OnlineResult{}, fmt.Errorf("adaptmr: online run: %w", err)
	}
	if err := o.verify(nil); err != nil {
		return OnlineResult{}, err
	}
	perfstat.Publish(cfg.Obs.Metrics, res.Perf)

	out := OnlineResult{
		Job:         res.Job,
		StartPair:   start,
		FinalPair:   ctrl.InstalledPair(),
		Switches:    ctrl.Switches(),
		Windows:     ctrl.Windows(),
		Decisions:   ctrl.Decisions(),
		SwitchStall: res.SwitchStall,
	}
	out.StartPairCode = out.StartPair.Code()
	out.FinalPairCode = out.FinalPair.Code()
	if eng != nil {
		out.SimEvents = eng.EventsFired()
	}
	return out, nil
}

// OnlineBench condenses an online run into the gate summary compared by
// CompareBenches (workload label "online:<bench>"). workload names the
// benchmark; cfg and inputMB identify the testbed the run executed on.
func OnlineBench(res OnlineResult, workload string, cfg ClusterConfig, inputMB int64) Bench {
	j := res.Job
	return analyze.BenchFromOnline(analyze.OnlineRunSummary{
		Workload:  workload,
		Hosts:     cfg.Hosts,
		VMs:       cfg.VMsPerHost,
		InputMB:   inputMB,
		Seed:      cfg.Seed,
		StartPair: res.StartPairCode,
		FinalPair: res.FinalPairCode,
		Switches:  res.Switches,

		MakespanS:    j.Duration.Seconds(),
		MapS:         j.MapsDoneAt.Sub(j.Start).Seconds(),
		ShuffleS:     j.ShuffleDoneAt.Sub(j.MapsDoneAt).Seconds(),
		ReduceS:      j.Done.Sub(j.ShuffleDoneAt).Seconds(),
		SwitchStallS: res.SwitchStall.Seconds(),
		SimEvents:    int64(res.SimEvents),
	})
}
