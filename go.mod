module adaptmr

go 1.22
