// Benchmarks regenerating every table and figure of the paper on the
// scaled-down Quick testbed (so `go test -bench=.` completes in minutes).
// Use cmd/paperbench for the full-scale paper configuration.
//
// Each benchmark reports paper-relevant shape metrics alongside ns/op via
// b.ReportMetric, so a bench run doubles as a regression check on the
// reproduction's qualitative results.
package adaptmr_test

import (
	"testing"

	"adaptmr"
	"adaptmr/internal/experiments"
	"adaptmr/internal/iosched"
	"adaptmr/internal/workloads"
)

func quickCfg() experiments.Config { return experiments.Quick() }

// must unwraps (value, error) pairs inside benchmark bodies; a failed
// simulation is a harness bug, so aborting the bench run is correct.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// BenchmarkFig1SysbenchPairs regenerates Fig 1: sysbench elapsed time per
// pair at consolidation 1, 2 and 3 VMs.
func BenchmarkFig1SysbenchPairs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig1(quickCfg())
		b.ReportMetric(r.SlowdownVs1VM(2), "slowdown2vm")
		b.ReportMetric(r.SlowdownVs1VM(3), "slowdown3vm")
	}
}

// BenchmarkFig2PairSweep regenerates Fig 2: the three benchmarks across
// the candidate pairs.
func BenchmarkFig2PairSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig2(quickCfg())
		b.ReportMetric(100*r.Variation("sort", false), "sortVar%")
		b.ReportMetric(100*r.Variation("wordcount", false), "wcVar%")
	}
}

// BenchmarkTable1SortMatrix regenerates Table I: the 4×4 sort matrix.
func BenchmarkTable1SortMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table1(quickCfg())
		_, _, best := r.Best()
		b.ReportMetric(r.Default()/best, "defaultOverBest")
		b.ReportMetric(r.ColumnMean(iosched.Noop)/r.ColumnMean(iosched.CFQ), "noopOverCfq")
	}
}

// BenchmarkFig3ThroughputCDF regenerates Fig 3: VMM and VM throughput CDFs
// under (CFQ, CFQ) and (Anticipatory, Deadline).
func BenchmarkFig3ThroughputCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig3(quickCfg())
		b.ReportMetric(r.VMMMean[0], "ccVMM_MBps")
		b.ReportMetric(r.VMMMean[1], "adVMM_MBps")
		b.ReportMetric(r.FairnessSpread(0), "ccSpread")
	}
}

// BenchmarkFig4ProgressPoints regenerates Fig 4: per-pair running time at
// progress checkpoints plus the composed optimum.
func BenchmarkFig4ProgressPoints(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig4(quickCfg())
		b.ReportMetric(100*r.OptimalImprovementOverDefault(), "optVsDef%")
		b.ReportMetric(100*r.OptimalImprovementOverBest(), "optVsBest%")
	}
}

// BenchmarkTable2Waves regenerates Table II: non-concurrent shuffle share
// vs map waves.
func BenchmarkTable2Waves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table2(quickCfg())
		b.ReportMetric(r.Percent[0], "pct@1wave")
		b.ReportMetric(r.Percent[len(r.Percent)-1], "pct@max")
	}
}

// BenchmarkFig5SwitchCost regenerates Fig 5 on a reduced state set: the
// dd-probe switch-cost matrix.
func BenchmarkFig5SwitchCost(b *testing.B) {
	cfg := quickCfg()
	cfg.Pairs = cfg.Pairs[:3]
	for i := 0; i < b.N; i++ {
		r := experiments.Fig5(cfg)
		b.ReportMetric(r.SelfCostMean(), "selfCost_s")
		b.ReportMetric(r.Asymmetry(), "asymmetry_s")
	}
}

// BenchmarkFig6PhaseProfile regenerates Fig 6: per-phase pair scores.
func BenchmarkFig6PhaseProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := must(experiments.Fig6(quickCfg()))
		diff := 0.0
		if r.BestFor(0).Pair != r.BestFor(1).Pair {
			diff = 1.0
		}
		b.ReportMetric(diff, "phaseOptimaDiffer")
	}
}

// BenchmarkFig7aWorkloads regenerates Fig 7a: adaptive vs static across
// the three workloads.
func BenchmarkFig7aWorkloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := must(experiments.Fig7a(quickCfg()))
		for _, row := range r.Rows {
			if row.Scenario == "sort" {
				b.ReportMetric(100*row.ImprovementOverDefault(), "sortVsDef%")
			}
		}
	}
}

// BenchmarkFig7bConsolidation regenerates Fig 7b.
func BenchmarkFig7bConsolidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := must(experiments.Fig7b(quickCfg()))
		tr := r.ImprovementTrend()
		b.ReportMetric(100*tr[len(tr)-1], "densest%")
	}
}

// BenchmarkFig7cDataSize regenerates Fig 7c.
func BenchmarkFig7cDataSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := must(experiments.Fig7c(quickCfg()))
		tr := r.ImprovementTrend()
		b.ReportMetric(100*tr[len(tr)-1], "biggest%")
	}
}

// BenchmarkFig7dScale regenerates Fig 7d.
func BenchmarkFig7dScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := must(experiments.Fig7d(quickCfg()))
		tr := r.ImprovementTrend()
		b.ReportMetric(100*tr[len(tr)-1], "largest%")
	}
}

// BenchmarkFig8Phases regenerates Fig 8: phase durations per benchmark.
func BenchmarkFig8Phases(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := must(experiments.Fig8(quickCfg()))
		_ = r.Render()
	}
}

// ---------------------------------------------------------------------------
// Ablation benches (DESIGN.md §5): how the headline adaptive gain responds
// to the design knobs of the stack.
// ---------------------------------------------------------------------------

func quickTuner(mutate func(*adaptmr.ClusterConfig)) adaptmr.TuningResult {
	cfg := adaptmr.DefaultClusterConfig()
	cfg.Hosts = 2
	cfg.VMsPerHost = 2
	if mutate != nil {
		mutate(&cfg)
	}
	job := adaptmr.SortBenchmark(96 << 20).Job
	return must(adaptmr.NewTuner(cfg, job).WithCandidates([]adaptmr.Pair{
		adaptmr.DefaultPair,
		adaptmr.MustParsePair("ad"),
		adaptmr.MustParsePair("ac"),
		adaptmr.MustParsePair("dd"),
		adaptmr.MustParsePair("nc"),
	}).Tune())
}

// BenchmarkAblationAnticipationOff disables AS anticipation: AS degrades
// to a deadline-like elevator and loses its VMM-level edge.
func BenchmarkAblationAnticipationOff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := quickTuner(func(c *adaptmr.ClusterConfig) {
			c.Host.Sched.AnticExpire = 0
		})
		b.ReportMetric(100*out.ImprovementOverDefault(), "vsDef%")
	}
}

// BenchmarkAblationNoSliceIdle disables CFQ idling: CFQ loses per-stream
// stickiness on dry queues.
func BenchmarkAblationNoSliceIdle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := quickTuner(func(c *adaptmr.ClusterConfig) {
			c.Host.Sched.SliceIdle = 0
		})
		b.ReportMetric(100*out.ImprovementOverDefault(), "vsDef%")
	}
}

// BenchmarkAblationFreeSwitch removes the elevator re-init stall,
// isolating the drain component of switch cost.
func BenchmarkAblationFreeSwitch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := quickTuner(func(c *adaptmr.ClusterConfig) {
			c.Host.SwitchReinit = 0
		})
		b.ReportMetric(float64(out.Plan.NumSwitches()), "switches")
	}
}

// BenchmarkAblationThreePhases compares the 3-phase scheme against the
// paper's merged 2-phase default.
func BenchmarkAblationThreePhases(b *testing.B) {
	cfg := adaptmr.DefaultClusterConfig()
	cfg.Hosts = 2
	cfg.VMsPerHost = 2
	job := adaptmr.SortBenchmark(96 << 20).Job
	cands := []adaptmr.Pair{
		adaptmr.DefaultPair,
		adaptmr.MustParsePair("ad"),
		adaptmr.MustParsePair("dd"),
	}
	for i := 0; i < b.N; i++ {
		two := must(adaptmr.NewTuner(cfg, job).WithScheme(adaptmr.TwoPhases).WithCandidates(cands).Tune())
		three := must(adaptmr.NewTuner(cfg, job).WithScheme(adaptmr.ThreePhases).WithCandidates(cands).Tune())
		b.ReportMetric(two.Duration.Seconds(), "twoPhase_s")
		b.ReportMetric(three.Duration.Seconds(), "threePhase_s")
	}
}

// BenchmarkHeuristicVsBruteForce measures the heuristic's optimality gap
// and evaluation savings.
func BenchmarkHeuristicVsBruteForce(b *testing.B) {
	cfg := adaptmr.DefaultClusterConfig()
	cfg.Hosts = 2
	cfg.VMsPerHost = 2
	job := adaptmr.SortBenchmark(96 << 20).Job
	cands := []adaptmr.Pair{
		adaptmr.DefaultPair,
		adaptmr.MustParsePair("ad"),
		adaptmr.MustParsePair("ac"),
		adaptmr.MustParsePair("nc"),
	}
	for i := 0; i < b.N; i++ {
		tuner := adaptmr.NewTuner(cfg, job).WithCandidates(cands)
		h := must(tuner.Tune())
		heurEvals := tuner.Evaluations()
		bf := must(tuner.BruteForce())
		b.ReportMetric(100*(h.Duration.Seconds()-bf.Duration.Seconds())/bf.Duration.Seconds(), "optGap%")
		b.ReportMetric(float64(heurEvals), "heurEvals")
	}
}

// BenchmarkSimulatorEventRate measures raw simulation throughput (events
// per second of wall time) on a full sort job — the engine's own speed.
func BenchmarkSimulatorEventRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := adaptmr.DefaultClusterConfig()
		cfg.Hosts = 2
		cfg.VMsPerHost = 2
		res, err := adaptmr.Run(cfg, workloads.Sort(96<<20).Job, adaptmr.DefaultPair)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Duration.Seconds(), "simSeconds")
	}
}

// ---------------------------------------------------------------------------
// Extension benches (paper future work implemented in internal/core)
// ---------------------------------------------------------------------------

// BenchmarkFineGrainedController compares the reactive per-host controller
// against the static default on sort.
func BenchmarkFineGrainedController(b *testing.B) {
	cfg := adaptmr.DefaultClusterConfig()
	cfg.Hosts = 2
	cfg.VMsPerHost = 2
	job := adaptmr.SortBenchmark(96 << 20).Job
	for i := 0; i < b.N; i++ {
		static, err := adaptmr.Run(cfg, job, adaptmr.DefaultPair)
		if err != nil {
			b.Fatal(err)
		}
		reactive, switches, err := adaptmr.RunFineGrained(cfg, job, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(static.Duration.Seconds(), "static_s")
		b.ReportMetric(reactive.Duration.Seconds(), "reactive_s")
		b.ReportMetric(float64(switches), "switches")
	}
}

// BenchmarkChainTuning tunes a two-stage chain and reports the chain-level
// gain over the all-default execution.
func BenchmarkChainTuning(b *testing.B) {
	cfg := adaptmr.DefaultClusterConfig()
	cfg.Hosts = 2
	cfg.VMsPerHost = 2
	stages := []adaptmr.JobConfig{
		adaptmr.WordCountNoCombinerBenchmark(96 << 20).Job,
		adaptmr.SortBenchmark(96 << 20).Job,
	}
	for i := 0; i < b.N; i++ {
		out := must(adaptmr.TuneChain(cfg, stages))
		b.ReportMetric(100*out.ImprovementOverDefault(), "vsDef%")
		b.ReportMetric(float64(out.Evaluations), "evals")
	}
}

// BenchmarkPredictorAccuracy measures the additive prediction model's
// error on switching plans versus full simulations.
func BenchmarkPredictorAccuracy(b *testing.B) {
	cfg := adaptmr.DefaultClusterConfig()
	cfg.Hosts = 2
	cfg.VMsPerHost = 2
	job := adaptmr.SortBenchmark(96 << 20).Job
	for i := 0; i < b.N; i++ {
		tuner := adaptmr.NewTuner(cfg, job).WithCandidates([]adaptmr.Pair{
			adaptmr.DefaultPair,
			adaptmr.MustParsePair("ad"),
			adaptmr.MustParsePair("dd"),
		})
		out := must(tuner.Tune())
		p := adaptmr.NewPredictor(out.Profiles, nil)
		plan := adaptmr.NewPlan(adaptmr.TwoPhases, adaptmr.MustParsePair("ad"), adaptmr.DefaultPair)
		predicted := p.Predict(plan).Seconds()
		measured := must(tuner.RunPlan(plan)).Duration.Seconds()
		b.ReportMetric(100*(predicted-measured)/measured, "err%")
	}
}
