package adaptmr_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"adaptmr"
)

type traceFile struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		PID  int64          `json:"pid"`
		TID  int64          `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func tracedRun(t *testing.T) []byte {
	t.Helper()
	tr := adaptmr.NewTracer()
	job := adaptmr.SortBenchmark(32 << 20).Job
	res, err := adaptmr.Run(quickCluster(), job, adaptmr.DefaultPair, adaptmr.WithTracer(tr))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Duration <= 0 {
		t.Fatal("job did not run")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceGoldenDeterminism runs the same seeded job twice and requires
// byte-identical trace exports — the end-to-end determinism guarantee the
// whole observability layer is built on.
func TestTraceGoldenDeterminism(t *testing.T) {
	a := tracedRun(t)
	b := tracedRun(t)
	if !bytes.Equal(a, b) {
		t.Fatal("same-seed runs produced different traces")
	}
}

// TestTraceCoversAllLayers parses a full-job trace and asserts spans from
// every simulated layer appear: guest elevators, the Dom0 elevator, the
// physical disk, the network, and the MapReduce runtime.
func TestTraceCoversAllLayers(t *testing.T) {
	raw := tracedRun(t)
	var tf traceFile
	if err := json.Unmarshal(raw, &tf); err != nil {
		t.Fatalf("trace JSON invalid: %v", err)
	}
	if tf.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit %q", tf.DisplayTimeUnit)
	}
	cats := map[string]int{}
	names := map[string]bool{}
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "M" {
			if s, ok := ev.Args["name"].(string); ok {
				names[s] = true
			}
			continue
		}
		cats[ev.Cat]++
	}
	for _, want := range []string{"io.vm", "io.dom0", "disk", "net", "mapred"} {
		if cats[want] == 0 {
			t.Errorf("no %q events in trace (got %v)", want, cats)
		}
	}
	for _, want := range []string{"cluster", "host0", "host1", "dom0 elevator", "disk", "nic"} {
		if !names[want] {
			t.Errorf("missing process/thread name %q", want)
		}
	}
}

// TestMetricsOnResults checks that a metrics-enabled run populates the core
// per-level instruments and that the snapshot rides on the job result.
func TestMetricsOnResults(t *testing.T) {
	m := adaptmr.NewMetrics()
	job := adaptmr.SortBenchmark(32 << 20).Job
	res, err := adaptmr.Run(quickCluster(), job, adaptmr.DefaultPair, adaptmr.WithMetrics(m))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Metrics == nil {
		t.Fatal("no metrics snapshot on result")
	}
	snap := res.Metrics
	for _, name := range []string{
		"io.vm.requests", "io.vm.bytes", "io.dom0.requests", "io.dom0.bytes",
		"net.flows", "net.bytes", "mapred.maps", "mapred.reduces", "sim.events",
	} {
		if snap.Counters[name] <= 0 {
			t.Errorf("counter %s = %d, want > 0", name, snap.Counters[name])
		}
	}
	if snap.Counters["mapred.maps"] != int64(res.NumMaps) {
		t.Errorf("mapred.maps = %d, want %d", snap.Counters["mapred.maps"], res.NumMaps)
	}
	if h, ok := snap.Histograms["io.dom0.latency_ms"]; !ok || h.Count == 0 {
		t.Error("io.dom0.latency_ms histogram empty")
	}
	if g := snap.Gauges["mapred.duration_s"]; g <= 0 {
		t.Errorf("mapred.duration_s = %v", g)
	}
	// Phase volume gauges cover all three runtime phases.
	for _, ph := range []string{"map", "shuffle", "reduce"} {
		if _, ok := snap.Gauges["phase."+ph+".read_bytes"]; !ok {
			t.Errorf("missing phase.%s.read_bytes gauge", ph)
		}
	}
}

// TestTunerPerCandidateMetrics checks the tuner aggregates metrics across
// evaluations and that each reference run carries its own snapshot.
func TestTunerPerCandidateMetrics(t *testing.T) {
	m := adaptmr.NewMetrics()
	tr := adaptmr.NewTracer()
	job := adaptmr.SortBenchmark(16 << 20).Job
	tuner := adaptmr.NewTuner(quickCluster(), job,
		adaptmr.WithMetrics(m), adaptmr.WithTracer(tr)).
		WithCandidates([]adaptmr.Pair{
			adaptmr.MustParsePair("cc"),
			adaptmr.MustParsePair("ad"),
		})
	res, err := tuner.Tune()
	if err != nil {
		t.Fatalf("Tune: %v", err)
	}
	if res.Default.Metrics == nil || res.BestSingle.Metrics == nil {
		t.Fatal("reference runs carry no metrics snapshots")
	}
	// The aggregate registry absorbed every evaluation, so its counters
	// dominate any single run's.
	agg := m.Snapshot()
	if agg.Counters["mapred.maps"] < res.Default.Metrics.Counters["mapred.maps"] {
		t.Errorf("aggregate maps %d < single-run maps %d",
			agg.Counters["mapred.maps"], res.Default.Metrics.Counters["mapred.maps"])
	}
	if tr.Len() == 0 {
		t.Fatal("tuner recorded no trace events")
	}
	// Each evaluation labels its own trace process group with its plan.
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var tf traceFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("tuner trace invalid: %v", err)
	}
	labels := map[string]bool{}
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			if s, ok := ev.Args["name"].(string); ok {
				labels[s] = true
			}
		}
	}
	found := 0
	for l := range labels {
		if len(l) > 0 && l[0] == '[' {
			found++
		}
	}
	if found < 2 {
		t.Errorf("expected plan-labelled process groups, got %v", labels)
	}
}
