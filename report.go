package adaptmr

import (
	"fmt"

	"adaptmr/internal/analyze"
	"adaptmr/internal/cluster"
	"adaptmr/internal/mapred"
	"adaptmr/internal/obs"
	"adaptmr/internal/obs/perfstat"
)

// Report is the full analysis artefact of one traced run: critical path
// with per-layer blame, per-phase breakdown tables, whole-run latency
// quantiles, totals and fixed-interval timeseries. It marshals to
// deterministic JSON and renders via WriteMarkdown / WriteHTML.
type Report = analyze.Report

// Bench is the compact committed-to-git run summary the regression gate
// compares (configuration labels + watched scalar metrics).
type Bench = analyze.Bench

// Comparison is the outcome of gating a candidate Bench against a
// baseline; Regressed() reports whether any gated metric tripped.
type Comparison = analyze.Comparison

// ReportOptions labels and parameterises RunReport.
type ReportOptions struct {
	// Workload names the benchmark (e.g. "sort") in the report's bench
	// summary; InputMB is the per-datanode input volume label.
	Workload string
	InputMB  int64

	// TimeseriesPoints caps the fixed-interval sample count (default
	// 160).
	TimeseriesPoints int

	// CheckInvariants attaches the runtime correctness harness
	// (internal/check) to every block queue of the instrumented run; a
	// violation fails the report.
	CheckInvariants bool

	// CollectPerf wraps the run's event loop in an engine self-telemetry
	// probe and embeds the result (wall clock, events/sec, allocs/event)
	// into the report's bench summary. Wall-clock values differ across
	// runs, so reports produced with CollectPerf are NOT byte-identical;
	// leave it off for golden or determinism comparisons.
	CollectPerf bool
}

// RunReport executes one job under a single scheduler pair on a fresh,
// fully instrumented cluster (tracer + metrics + live timeseries
// sampler) and analyzes the run into a Report. The input cfg's Obs sink
// is replaced; the run is deterministic for a fixed cfg/job/pair, so the
// report is byte-identical across invocations.
func RunReport(cfg ClusterConfig, job JobConfig, pair Pair, opts ReportOptions) (*Report, error) {
	if err := job.Validate(); err != nil {
		return nil, fmt.Errorf("adaptmr: %w", err)
	}
	tracer := NewTracer()
	metrics := NewMetrics()
	cfg.Obs.Trace = tracer
	cfg.Obs.Metrics = metrics
	cfg.Obs.PIDBase = 0
	var checks *CheckSet
	if opts.CheckInvariants {
		checks = NewCheckSet()
		cfg.Check = checks
	}

	cl := cluster.New(cfg)
	smp := analyze.NewSampler()
	smp.AttachCluster(cl)
	cl.InstallPair(pair)
	j := mapred.NewJob(cl, job)
	j.Start(nil)
	probe := perfstat.Start(opts.CollectPerf, cl.Eng)
	cl.Eng.Run()
	perf := probe.Stop()
	if !j.Done() {
		return nil, fmt.Errorf("adaptmr: report run drained before job completion")
	}
	perfstat.Publish(metrics, perf)
	res := j.Result()
	if checks != nil {
		checks.Finalize()
		if err := checks.Err(); err != nil {
			return nil, fmt.Errorf("adaptmr: report run failed invariant checks: %w", err)
		}
	}

	return analyze.Build(tracer, res.Metrics, smp, analyze.Options{
		PIDBase:          0,
		Workload:         opts.Workload,
		Hosts:            cfg.Hosts,
		VMs:              cfg.VMsPerHost,
		InputMB:          opts.InputMB,
		Seed:             cfg.Seed,
		Pair:             pair.Code(),
		TimeseriesPoints: opts.TimeseriesPoints,
		Perf:             perf,
	})
}

// ExplainReport is the "why" artefact of one instrumented run: the full
// Report plus per-phase request-journey latency decompositions and
// scheduler decision provenance (see RunExplain). Renders via
// WriteMarkdown / WriteHTML and marshals to deterministic JSON.
type ExplainReport = analyze.ExplainReport

// RunExplain executes one job under a single scheduler pair on a fully
// instrumented cluster — tracer, metrics, timeseries sampler, journey log
// and decision log — and analyzes the run into an ExplainReport answering
// "why this pair, this phase": every completed request's latency is
// attributed 100% to named stages (ns-exact), and every elevator dispatch
// decision is tallied per phase and queue level. Deterministic for a
// fixed cfg/job/pair, byte-identical across invocations.
func RunExplain(cfg ClusterConfig, job JobConfig, pair Pair, opts ReportOptions) (*ExplainReport, error) {
	if err := job.Validate(); err != nil {
		return nil, fmt.Errorf("adaptmr: %w", err)
	}
	tracer := NewTracer()
	metrics := NewMetrics()
	journeys := obs.NewJourneyLog()
	decisions := obs.NewDecisionLog()
	cfg.Obs.Trace = tracer
	cfg.Obs.Metrics = metrics
	cfg.Obs.Journeys = journeys
	cfg.Obs.Decisions = decisions
	cfg.Obs.PIDBase = 0
	var checks *CheckSet
	if opts.CheckInvariants {
		checks = NewCheckSet()
		cfg.Check = checks
	}

	cl := cluster.New(cfg)
	smp := analyze.NewSampler()
	smp.AttachCluster(cl)
	cl.InstallPair(pair)
	j := mapred.NewJob(cl, job)
	j.Start(nil)
	probe := perfstat.Start(opts.CollectPerf, cl.Eng)
	cl.Eng.Run()
	perf := probe.Stop()
	if !j.Done() {
		return nil, fmt.Errorf("adaptmr: explain run drained before job completion")
	}
	perfstat.Publish(metrics, perf)
	res := j.Result()
	if checks != nil {
		checks.Finalize()
		if err := checks.Err(); err != nil {
			return nil, fmt.Errorf("adaptmr: explain run failed invariant checks: %w", err)
		}
	}

	return analyze.BuildExplain(tracer, res.Metrics, smp, journeys, decisions, analyze.Options{
		PIDBase:          0,
		Workload:         opts.Workload,
		Hosts:            cfg.Hosts,
		VMs:              cfg.VMsPerHost,
		InputMB:          opts.InputMB,
		Seed:             cfg.Seed,
		Pair:             pair.Code(),
		TimeseriesPoints: opts.TimeseriesPoints,
		Perf:             perf,
	})
}

// CompareBenches gates a candidate bench against a baseline with the
// given relative tolerance (0.05 = 5%). It errors when the two benches
// come from different run configurations.
func CompareBenches(base, cand Bench, tol float64) (Comparison, error) {
	return analyze.Compare(base, cand, tol)
}
