package adaptmr_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"adaptmr"
)

// onlineFingerprint captures every observable byte of an online run:
// the result JSON (decision log included) and the Chrome trace.
func onlineFingerprint(t *testing.T, parallelism int) []byte {
	t.Helper()
	tr := adaptmr.NewTracer()
	res, err := adaptmr.RunOnline(quickCluster(), adaptmr.SortBenchmark(64<<20).Job,
		adaptmr.WithOnlineControl(adaptmr.SmokeOnlinePolicy()),
		adaptmr.WithTracer(tr),
		adaptmr.WithParallelism(parallelism))
	if err != nil {
		t.Fatalf("parallelism %d: %v", parallelism, err)
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(res); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRunOnlineByteIdentity: the controller mutates the execution
// in-run, so the determinism contract matters doubly — serial and
// parallel runs must produce byte-identical traces, decision logs and
// results.
func TestRunOnlineByteIdentity(t *testing.T) {
	serial := onlineFingerprint(t, 1)
	for _, par := range []int{4, 8} {
		if got := onlineFingerprint(t, par); !bytes.Equal(serial, got) {
			t.Fatalf("parallelism %d output differs from serial (%d vs %d bytes)",
				par, len(got), len(serial))
		}
	}
}

// TestRunOnlineSwitchesOnSort pins the paper-shaped behaviour at smoke
// scale: booting CFQ/CFQ on sort, the controller must move to the
// anticipatory Dom0 pair during the sync-read map phase and return to
// CFQ for the write-heavy shuffle/reduce tail — exactly two issued
// switches, ending where it started.
func TestRunOnlineSwitchesOnSort(t *testing.T) {
	res, err := adaptmr.RunOnline(quickCluster(), adaptmr.SortBenchmark(64<<20).Job,
		adaptmr.WithOnlineControl(adaptmr.SmokeOnlinePolicy()),
		adaptmr.WithInvariantChecks())
	if err != nil {
		t.Fatal(err)
	}
	if res.Switches != 2 {
		t.Fatalf("got %d switches, want 2 (decisions: %+v)", res.Switches, res.Decisions)
	}
	if res.StartPairCode != "cc" || res.FinalPairCode != "cc" {
		t.Fatalf("pair trajectory %s -> %s, want cc -> cc", res.StartPairCode, res.FinalPairCode)
	}
	var issued []adaptmr.OnlineDecision
	for _, d := range res.Decisions {
		if d.Issued {
			issued = append(issued, d)
		}
	}
	if len(issued) != 2 || issued[0].To != "ac" || issued[1].To != "cc" {
		t.Fatalf("issued switch sequence wrong: %+v", issued)
	}
	if issued[0].Regime != "read" || issued[1].Regime != "write" {
		t.Fatalf("switch regimes %s/%s, want read/write", issued[0].Regime, issued[1].Regime)
	}
}

// TestRunOnlineProperty is the satellite-4 property test: the
// controller run over seeded pseudo-random workloads from every
// single-elevator start pair must complete with zero invariant
// violations, honour the dwell spacing between issued switches, and
// keep a monotone decision log. Runs under -race in CI.
func TestRunOnlineProperty(t *testing.T) {
	benches := []func(int64) adaptmr.Workload{
		adaptmr.SortBenchmark,
		adaptmr.WordCountBenchmark,
		adaptmr.WordCountNoCombinerBenchmark,
	}
	// splitmix-style deterministic "random" workload draws: no global
	// RNG, so the cases are stable across runs and machines.
	next := uint64(0x9E3779B97F4A7C15)
	rnd := func(n uint64) uint64 {
		next ^= next >> 30
		next *= 0xBF58476D1CE4E5B9
		next ^= next >> 27
		return next % n
	}
	for i, start := range []string{"nn", "dd", "aa", "cc"} {
		start := start
		bench := benches[rnd(uint64(len(benches)))]
		inputMB := int64(16 + 16*rnd(3)) // 16, 32 or 48 MB per VM
		seed := int64(1 + rnd(100))
		t.Run(fmt.Sprintf("start=%s/case=%d", start, i), func(t *testing.T) {
			t.Parallel()
			cfg := quickCluster()
			cfg.Seed = seed
			pol := adaptmr.SmokeOnlinePolicy()
			pol.StartPair = adaptmr.MustParsePair(start)
			res, err := adaptmr.RunOnline(cfg, bench(inputMB<<20).Job,
				adaptmr.WithOnlineControl(pol),
				adaptmr.WithInvariantChecks())
			if err != nil {
				t.Fatal(err)
			}
			if res.Job.Duration <= 0 {
				t.Fatal("job did not run")
			}
			if res.Windows == 0 {
				t.Fatal("controller evaluated no windows")
			}
			lastAt := -1.0
			lastIssued := -1.0
			dwellS := pol.MinDwell.Seconds()
			for _, d := range res.Decisions {
				if d.AtS < lastAt {
					t.Fatalf("decision log not monotone: %.3f after %.3f", d.AtS, lastAt)
				}
				lastAt = d.AtS
				if !d.Issued {
					continue
				}
				if lastIssued >= 0 && d.AtS-lastIssued < dwellS-1e-9 {
					t.Fatalf("issued switches %.3fs apart, dwell is %.3fs (thrash)",
						d.AtS-lastIssued, dwellS)
				}
				lastIssued = d.AtS
			}
		})
	}
}

// TestOnlineVsOfflineVsStatic answers the tentpole acceptance bar on
// both paper benchmarks: the online controller — no profiling runs, no
// phase-boundary knowledge — must land within 5% of the paper's offline
// meta-scheduler (which profiles every pair first) and strictly beat
// the worst static pair.
func TestOnlineVsOfflineVsStatic(t *testing.T) {
	for _, bench := range []struct {
		name string
		wl   adaptmr.Workload
	}{
		{"sort", adaptmr.SortBenchmark(64 << 20)},
		{"wordcount", adaptmr.WordCountBenchmark(64 << 20)},
	} {
		bench := bench
		t.Run(bench.name, func(t *testing.T) {
			t.Parallel()
			cfg := quickCluster()

			tuner := adaptmr.NewTuner(cfg, bench.wl.Job, adaptmr.WithParallelism(8))
			tuned, err := tuner.Tune()
			if err != nil {
				t.Fatal(err)
			}
			worstStatic := 0.0
			for _, p := range tuned.Profiles {
				if s := p.Total.Seconds(); s > worstStatic {
					worstStatic = s
				}
			}

			online, err := adaptmr.RunOnline(cfg, bench.wl.Job,
				adaptmr.WithOnlineControl(adaptmr.SmokeOnlinePolicy()))
			if err != nil {
				t.Fatal(err)
			}
			onlineS := online.Job.Duration.Seconds()
			offlineS := tuned.Duration.Seconds()

			t.Logf("%s: online %.3fs (%d switches), offline %.3fs, best static %.3fs, worst static %.3fs",
				bench.name, onlineS, online.Switches, offlineS,
				tuned.BestSingle.Duration.Seconds(), worstStatic)
			if onlineS > offlineS*1.05 {
				t.Fatalf("online %.3fs is more than 5%% behind offline %.3fs", onlineS, offlineS)
			}
			if onlineS >= worstStatic {
				t.Fatalf("online %.3fs does not beat worst static %.3fs", onlineS, worstStatic)
			}
		})
	}
}

// overlapScenario pins three jobs to one cell, arriving together, so
// their phases overlap on the cell's shared Dom0 spindles — the ROADMAP
// item-2 leftover configuration.
func overlapScenario() adaptmr.FleetScenario {
	s := adaptmr.FleetScenario{
		Name:         "overlap",
		Seed:         9,
		Cells:        1,
		HostsPerCell: 2,
		VMsPerHost:   2,
		Pair:         "cc",
		Policy:       adaptmr.FleetFair,
		Arrivals:     adaptmr.FleetArrivalSpec{Kind: "trace"},
		Jobs: []adaptmr.FleetJobSpec{
			{ID: "sort", Benchmark: "sort", InputPerVMMB: 32, Count: 1, ArriveMS: []int64{0}},
			{ID: "wc", Benchmark: "wordcount", InputPerVMMB: 32, Count: 1, ArriveMS: []int64{0}},
			{ID: "wcnc", Benchmark: "wordcount-nc", InputPerVMMB: 32, Count: 1, ArriveMS: []int64{500}},
		},
	}
	return s
}

// TestFleetOverlapOnline answers ROADMAP item 2's leftover question: on
// a cell where phases of different jobs overlap, the per-cell
// controller must still hold the no-thrash contract (issued switches
// spaced by at least the dwell) and must not regress the fleet makespan
// beyond the static-pair baseline by more than the switching stalls it
// paid. With overlapping phases the composed regime is often mixed, so
// few or no switches is an acceptable (and correct) outcome — what is
// being tested is that the hysteresis holds, not that switching wins.
func TestFleetOverlapOnline(t *testing.T) {
	s := overlapScenario()
	static, err := adaptmr.RunFleet(s)
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := adaptmr.RunFleetOnline(s,
		adaptmr.WithOnlineControl(adaptmr.SmokeOnlinePolicy()),
		adaptmr.WithInvariantChecks())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 3 {
		t.Fatalf("got %d jobs, want 3", len(res.Jobs))
	}
	if len(stats.Cells) != 1 || stats.Cells[0].Windows == 0 {
		t.Fatalf("controller did not run: %+v", stats)
	}
	pol := adaptmr.SmokeOnlinePolicy()
	dwellS := pol.MinDwell.Seconds()
	for _, cell := range stats.Cells {
		lastIssued := -1.0
		for _, d := range cell.Decisions {
			if !d.Issued {
				continue
			}
			if lastIssued >= 0 && d.AtS-lastIssued < dwellS-1e-9 {
				t.Fatalf("cell %d: issued switches %.3fs apart, dwell %.3fs (thrash)",
					cell.Cell, d.AtS-lastIssued, dwellS)
			}
			lastIssued = d.AtS
		}
	}
	t.Logf("overlap: static makespan %.3fs, online %.3fs (%d switches over %d windows)",
		static.Agg.MakespanS, res.Agg.MakespanS, stats.Switches, stats.Windows)
	// The controller may not win on overlapped mixes, but it must never
	// blow up the makespan: allow 10% over static as the hysteresis bound.
	if res.Agg.MakespanS > static.Agg.MakespanS*1.10 {
		t.Fatalf("online fleet makespan %.3fs regresses static %.3fs by more than 10%%",
			res.Agg.MakespanS, static.Agg.MakespanS)
	}
}

// TestRunFleetOnlineDeterminism: per-cell controllers are
// engine-confined, so sharded execution must reproduce the serial
// results and controller stats byte-for-byte.
func TestRunFleetOnlineDeterminism(t *testing.T) {
	s := overlapScenario()
	s.Cells = 2
	s.Jobs = append([]adaptmr.FleetJobSpec{}, s.Jobs...)
	for i := range s.Jobs {
		s.Jobs[i].Cell = nil // spread round-robin across both cells
	}
	run := func(par int) []byte {
		res, stats, err := adaptmr.RunFleetOnline(s,
			adaptmr.WithOnlineControl(adaptmr.SmokeOnlinePolicy()),
			adaptmr.WithParallelism(par))
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		if err := enc.Encode(res); err != nil {
			t.Fatal(err)
		}
		if err := enc.Encode(stats); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := run(1)
	if got := run(4); !bytes.Equal(serial, got) {
		t.Fatalf("parallel fleet online output differs from serial (%d vs %d bytes)",
			len(got), len(serial))
	}
}
